#include "exec/hash_agg.h"

#include <algorithm>
#include <limits>

#include "exec/operator.h"

namespace pdtstore {

namespace {

constexpr size_t kInitialSlots = 1024;  // power of two

double InitAcc(AggKind kind) {
  switch (kind) {
    case AggKind::kMin:
      return std::numeric_limits<double>::infinity();
    case AggKind::kMax:
      return -std::numeric_limits<double>::infinity();
    default:
      return 0.0;
  }
}

}  // namespace

AggregationState::AggregationState(std::vector<size_t> group_by,
                                   std::vector<AggSpec> aggs)
    : group_by_(std::move(group_by)), aggs_(std::move(aggs)) {
  acc_.resize(aggs_.size());
  GrowTable(0);
}

void AggregationState::GrowTable(size_t min_groups) {
  // Power-of-two capacity keeping the table at most half full once
  // `min_groups` groups exist.
  size_t cap = std::max(kInitialSlots, slots_.size());
  while (cap < 2 * (min_groups + 1)) cap *= 2;
  if (cap == slots_.size()) return;
  slots_.assign(cap, 0);
  slot_mask_ = cap - 1;
  for (uint32_t gid = 0; gid < group_hashes_.size(); ++gid) {
    size_t pos = group_hashes_[gid] & slot_mask_;
    while (slots_[pos] != 0) pos = (pos + 1) & slot_mask_;
    slots_[pos] = gid + 1;
  }
}

void AggregationState::AssignGroups(const Batch& in, const uint64_t* hashes,
                                    uint32_t* gids) {
  const size_t n = in.num_rows();
  for (size_t row = 0; row < n; ++row) {
    // Safety net when the pre-sizing estimate under-predicted: keep the
    // table at most half full so probe chains stay short.
    if ((group_hashes_.size() + 1) * 2 > slots_.size()) {
      GrowTable(group_hashes_.size() + 1);
    }
    const uint64_t h = hashes[row];
    size_t pos = h & slot_mask_;
    uint32_t gid;
    while (true) {
      uint32_t slot = slots_[pos];
      if (slot == 0) {
        // New group: materialize its key values and init accumulators.
        gid = static_cast<uint32_t>(group_hashes_.size());
        slots_[pos] = gid + 1;
        group_hashes_.push_back(h);
        for (size_t c = 0; c < group_by_.size(); ++c) {
          key_cols_[c].AppendFrom(in.column(group_by_[c]), row);
        }
        counts_.push_back(0);
        for (size_t a = 0; a < aggs_.size(); ++a) {
          acc_[a].push_back(InitAcc(aggs_[a].kind));
        }
        break;
      }
      gid = slot - 1;
      if (group_hashes_[gid] == h) {
        // Verify on collision: typed compare against the stored key.
        bool equal = true;
        for (size_t c = 0; c < group_by_.size(); ++c) {
          if (key_cols_[c].CompareAt(gid, in.column(group_by_[c]), row) !=
              0) {
            equal = false;
            break;
          }
        }
        if (equal) break;
      }
      pos = (pos + 1) & slot_mask_;
    }
    gids[row] = gid;
    ++counts_[gid];
  }
}

Status AggregationState::Absorb(const Batch& in) {
  if (!key_cols_init_) {
    for (size_t c : group_by_) {
      key_cols_.emplace_back(in.column(c).type());
    }
    key_cols_init_ = true;
  }
  const size_t n = in.num_rows();
  hashes_.assign(n, kHashSeed);
  for (size_t c : group_by_) {
    in.column(c).HashColumn(hashes_.data());
  }
  gids_.resize(n);

  // Pre-size from the carried estimate (see header) with 25% headroom,
  // capped at the worst case of n all-new groups, so doubling/rehash
  // churn moves out of the per-row path on high-cardinality inputs.
  size_t est_new =
      prev_batch_new_groups_ == static_cast<size_t>(-1)
          ? n
          : prev_batch_new_groups_ + prev_batch_new_groups_ / 4 + 8;
  est_new = std::min(est_new, n);
  const size_t groups_before = group_hashes_.size();
  GrowTable(groups_before + est_new);
  group_hashes_.reserve(groups_before + est_new);
  counts_.reserve(groups_before + est_new);
  for (auto& a : acc_) a.reserve(groups_before + est_new);

  AssignGroups(in, hashes_.data(), gids_.data());
  prev_batch_new_groups_ = group_hashes_.size() - groups_before;

  // One typed pass per aggregate (type and kind dispatched per batch,
  // not per row).
  const uint32_t* gids = gids_.data();
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggKind kind = aggs_[a].kind;
    if (kind == AggKind::kCount) continue;
    double* acc = acc_[a].data();
    const ColumnVector& col = in.column(aggs_[a].input_idx);
    auto update = [&](auto value_at) {
      switch (kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          for (size_t i = 0; i < n; ++i) acc[gids[i]] += value_at(i);
          break;
        case AggKind::kMin:
          for (size_t i = 0; i < n; ++i) {
            double v = value_at(i);
            if (v < acc[gids[i]]) acc[gids[i]] = v;
          }
          break;
        case AggKind::kMax:
          for (size_t i = 0; i < n; ++i) {
            double v = value_at(i);
            if (v > acc[gids[i]]) acc[gids[i]] = v;
          }
          break;
        case AggKind::kCount:
          break;
      }
    };
    if (col.type() == TypeId::kInt64) {
      const int64_t* v = col.ints_data();
      update([v](size_t i) { return static_cast<double>(v[i]); });
    } else {
      const double* v = col.doubles_data();
      update([v](size_t i) { return v[i]; });
    }
  }
  return Status::OK();
}

Status AggregationState::MergeFrom(const AggregationState& other) {
  const size_t other_groups = other.group_hashes_.size();
  if (other_groups == 0) return Status::OK();
  if (!key_cols_init_) {
    for (size_t c = 0; c < group_by_.size(); ++c) {
      key_cols_.emplace_back(other.key_cols_[c].type());
    }
    key_cols_init_ = true;
  }
  GrowTable(group_hashes_.size() + other_groups);
  group_hashes_.reserve(group_hashes_.size() + other_groups);
  counts_.reserve(counts_.size() + other_groups);
  for (auto& a : acc_) a.reserve(a.size() + other_groups);

  for (uint32_t g = 0; g < other_groups; ++g) {
    const uint64_t h = other.group_hashes_[g];
    size_t pos = h & slot_mask_;
    uint32_t gid;
    while (true) {
      uint32_t slot = slots_[pos];
      if (slot == 0) {
        gid = static_cast<uint32_t>(group_hashes_.size());
        slots_[pos] = gid + 1;
        group_hashes_.push_back(h);
        for (size_t c = 0; c < group_by_.size(); ++c) {
          key_cols_[c].AppendFrom(other.key_cols_[c], g);
        }
        counts_.push_back(0);
        for (size_t a = 0; a < aggs_.size(); ++a) {
          acc_[a].push_back(InitAcc(aggs_[a].kind));
        }
        break;
      }
      gid = slot - 1;
      if (group_hashes_[gid] == h) {
        bool equal = true;
        for (size_t c = 0; c < group_by_.size(); ++c) {
          if (key_cols_[c].CompareAt(gid, other.key_cols_[c], g) != 0) {
            equal = false;
            break;
          }
        }
        if (equal) break;
      }
      pos = (pos + 1) & slot_mask_;
    }
    counts_[gid] += other.counts_[g];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].kind) {
        case AggKind::kSum:
        case AggKind::kAvg:
          acc_[a][gid] += other.acc_[a][g];
          break;
        case AggKind::kMin:
          acc_[a][gid] = std::min(acc_[a][gid], other.acc_[a][g]);
          break;
        case AggKind::kMax:
          acc_[a][gid] = std::max(acc_[a][gid], other.acc_[a][g]);
          break;
        case AggKind::kCount:
          break;
      }
    }
  }
  return Status::OK();
}

Batch AggregationState::TakeResult() {
  // Assemble the result batch: key columns (already in first-appearance
  // order) then aggregates.
  const size_t num_groups = group_hashes_.size();
  Batch result;
  std::vector<ColumnId> ids;
  for (size_t c = 0; c < group_by_.size(); ++c) {
    ids.push_back(static_cast<ColumnId>(c));
    result.columns().push_back(key_cols_init_ ? std::move(key_cols_[c])
                                              : ColumnVector());
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    ids.push_back(static_cast<ColumnId>(group_by_.size() + a));
    ColumnVector col(aggs_[a].kind == AggKind::kCount ? TypeId::kInt64
                                                      : TypeId::kDouble);
    switch (aggs_[a].kind) {
      case AggKind::kCount:
        col.ints().assign(counts_.begin(), counts_.end());
        break;
      case AggKind::kAvg:
        col.doubles().resize(num_groups);
        for (size_t g = 0; g < num_groups; ++g) {
          col.doubles()[g] =
              counts_[g] > 0
                  ? acc_[a][g] / static_cast<double>(counts_[g])
                  : 0.0;
        }
        break;
      default:
        col.doubles() = std::move(acc_[a]);
        break;
    }
    // Global aggregation with zero input rows: emit a single all-zero row.
    if (num_groups == 0 && group_by_.empty()) {
      if (aggs_[a].kind == AggKind::kCount) {
        col.ints().push_back(0);
      } else {
        col.doubles().push_back(0.0);
      }
    }
    result.columns().push_back(std::move(col));
  }
  result.set_column_ids(std::move(ids));
  // Release aggregation state.
  key_cols_.clear();
  key_cols_init_ = false;
  group_hashes_.clear();
  slots_.clear();
  counts_.clear();
  acc_.clear();
  return result;
}

Status HashAggNode::BuildResult() {
  // A fresh state per build so a retried Next() after an input error
  // restarts cleanly instead of aggregating into stale groups.
  AggregationState state(group_by_, aggs_);
  Batch in;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&in, kDefaultBatchSize));
    if (!more) break;
    PDT_RETURN_NOT_OK(state.Absorb(in));
  }
  emitter_ = std::make_unique<VectorSource>(state.TakeResult());
  built_ = true;
  return Status::OK();
}

StatusOr<bool> HashAggNode::Next(Batch* out, size_t max_rows) {
  if (!built_) {
    PDT_RETURN_NOT_OK(BuildResult());
  }
  return emitter_->Next(out, max_rows);
}

}  // namespace pdtstore

#include "storage/chunk.h"

namespace pdtstore {

StatusOr<Chunk> BuildChunk(const ColumnVector& values, Sid start_sid,
                           bool compression) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot build an empty chunk");
  }
  Chunk chunk;
  chunk.start_sid = start_sid;
  chunk.row_count = values.size();
  chunk.type = values.type();
  chunk.encoding = ChooseEncoding(values, compression);
  PDT_RETURN_NOT_OK(EncodeColumn(values, chunk.encoding, &chunk.data));
  size_t min_i = 0, max_i = 0;
  for (size_t i = 1; i < values.size(); ++i) {
    if (values.CompareAt(i, values, min_i) < 0) min_i = i;
    if (values.CompareAt(i, values, max_i) > 0) max_i = i;
  }
  chunk.min_value = values.GetValue(min_i);
  chunk.max_value = values.GetValue(max_i);
  return chunk;
}

Status DecodeChunk(const Chunk& chunk, ColumnVector* out) {
  return DecodeColumn(chunk.data, chunk.type, chunk.encoding, chunk.row_count,
                      out);
}

}  // namespace pdtstore

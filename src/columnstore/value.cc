#include "columnstore/value.h"

#include <cassert>

#include "util/string_util.h"

namespace pdtstore {

int Value::Compare(const Value& other) const {
  assert(type() == other.type() && "comparing values of different types");
  switch (type()) {
    case TypeId::kInt64: {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = AsDouble(), b = other.AsDouble();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case TypeId::kInt64:
      return std::to_string(AsInt64());
    case TypeId::kDouble:
      return StringPrintf("%g", AsDouble());
    case TypeId::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::ByteSize() const {
  return type() == TypeId::kString ? AsString().size() + 8 : 8;
}

int CompareTuples(const std::vector<Value>& a, const std::vector<Value>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return a.size() < b.size() ? -1 : (a.size() > b.size() ? 1 : 0);
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace pdtstore

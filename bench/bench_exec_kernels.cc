// Microbenchmarks for the selection-vector execution kernels: filter
// survivor compaction, selection gather, and hash aggregation, each
// measured against the row-at-a-time baseline the engine used before the
// typed-kernel refactor (per-value TypeId dispatch via Batch::AppendRow,
// string-encoded group keys via std::unordered_map). Emits
// BENCH_exec.json for machine consumption.
//
// Usage: bench_exec_kernels [--rows=1000000] [--reps=5]
//                           [--json=BENCH_exec.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "columnstore/batch.h"
#include "columnstore/keep_bitmap.h"
#include "columnstore/sel_vector.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/operator.h"

namespace pdtstore {
namespace bench {
namespace {

Batch MakeWideBatch(size_t rows, uint64_t seed) {
  // 3 int64 + 3 double payload columns: the "int64/double columns"
  // compaction workload.
  Random rng(seed);
  Batch b;
  std::vector<ColumnId> ids;
  for (int c = 0; c < 3; ++c) {
    ColumnVector col(TypeId::kInt64);
    col.ints().resize(rows);
    for (size_t i = 0; i < rows; ++i) {
      col.ints()[i] = static_cast<int64_t>(rng.Next() & 0xffffff);
    }
    ids.push_back(static_cast<ColumnId>(b.columns().size()));
    b.columns().push_back(std::move(col));
  }
  for (int c = 0; c < 3; ++c) {
    ColumnVector col(TypeId::kDouble);
    col.doubles().resize(rows);
    for (size_t i = 0; i < rows; ++i) {
      col.doubles()[i] = rng.NextDouble() * 1000.0;
    }
    ids.push_back(static_cast<ColumnId>(b.columns().size()));
    b.columns().push_back(std::move(col));
  }
  b.set_column_ids(std::move(ids));
  return b;
}

Batch EmptyLike(const Batch& in) {
  Batch out;
  out.set_column_ids(in.column_ids());
  for (size_t c = 0; c < in.num_columns(); ++c) {
    out.columns().emplace_back(in.column(c).type());
  }
  return out;
}

double BestOf(int reps, double (*fn)(const void*), const void* arg) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) best = std::min(best, fn(arg));
  return best;
}

// ------------------------------------------------------------------
// Filter survivor compaction, batch-at-a-time as FilterNode runs it:
// each input batch is compacted through its keep bitmap into a reused
// output batch. Baseline = the pre-refactor inner loop (AppendRow per
// surviving row); kernel = selection-vector AppendFiltered.
// ------------------------------------------------------------------

struct FilterArgs {
  const std::vector<Batch>* slices;
  const std::vector<std::vector<uint8_t>>* keeps;
};

double FilterBaselineMs(const void* p) {
  const auto* a = static_cast<const FilterArgs*>(p);
  Stopwatch sw;
  size_t total = 0;
  for (size_t s = 0; s < a->slices->size(); ++s) {
    const Batch& in = (*a->slices)[s];
    const auto& keep = (*a->keeps)[s];
    // Faithful pre-refactor FilterNode::Next: fresh output batch per
    // input batch, then AppendRow (per-value type dispatch) per survivor.
    Batch out = EmptyLike(in);
    for (size_t i = 0; i < in.num_rows(); ++i) {
      if (keep[i]) out.AppendRow(in, i);
    }
    total += out.num_rows();
  }
  double ms = sw.ElapsedMillis();
  if (total == 0) std::abort();
  return ms;
}

double FilterKernelMs(const void* p) {
  const auto* a = static_cast<const FilterArgs*>(p);
  Stopwatch sw;
  Batch out;
  size_t total = 0;
  for (size_t s = 0; s < a->slices->size(); ++s) {
    const Batch& in = (*a->slices)[s];
    out.ResetLike(in);
    out.AppendFiltered(in, (*a->keeps)[s].data());
    total += out.num_rows();
  }
  double ms = sw.ElapsedMillis();
  if (total == 0) std::abort();
  return ms;
}

// ------------------------------------------------------------------
// Keep-bitmap vs byte-keep ablation: the full predicate path as
// FilterNode runs it — evaluate the predicate over each batch, expand
// the keep vector to a selection, compact survivors — with the keep
// vector held as a byte per row (the pre-bitmap engine) vs packed to
// 1 bit per row (KeepBitmap: word stores, word-at-a-time FromKeep).
// Swept across selectivities, since the byte path's cost is flat while
// the bitmap path's expansion cost scales with survivors.
// ------------------------------------------------------------------

struct KeepPathArgs {
  const std::vector<Batch>* slices;
  int64_t threshold;  // keep rows with col0 <= threshold
};

double KeepByteMs(const void* p) {
  const auto* a = static_cast<const KeepPathArgs*>(p);
  Stopwatch sw;
  Batch out;
  std::vector<uint8_t> keep;
  size_t total = 0;
  for (const Batch& in : *a->slices) {
    const auto& v = in.column(0).ints();
    keep.assign(v.size(), 0);
    for (size_t i = 0; i < v.size(); ++i) {
      keep[i] = v[i] <= a->threshold;
    }
    out.ResetLike(in);
    out.AppendFiltered(in, keep.data());
    total += out.num_rows();
  }
  double ms = sw.ElapsedMillis();
  if (total == 0) std::abort();
  return ms;
}

double KeepBitmapMs(const void* p) {
  const auto* a = static_cast<const KeepPathArgs*>(p);
  Stopwatch sw;
  Batch out;
  KeepBitmap keep;
  size_t total = 0;
  for (const Batch& in : *a->slices) {
    const auto& v = in.column(0).ints();
    keep.Reset(v.size());
    const int64_t threshold = a->threshold;
    keep.FillFrom([&](size_t i) { return v[i] <= threshold; });
    out.ResetLike(in);
    out.AppendFiltered(in, keep);
    total += out.num_rows();
  }
  double ms = sw.ElapsedMillis();
  if (total == 0) std::abort();
  return ms;
}

// ------------------------------------------------------------------
// Gather through a selection vector (join/sort compaction shape).
// ------------------------------------------------------------------

struct GatherArgs {
  const Batch* in;
  const SelVector* sel;
};

double GatherBaselineMs(const void* p) {
  const auto* a = static_cast<const GatherArgs*>(p);
  Stopwatch sw;
  Batch out = EmptyLike(*a->in);
  for (size_t i = 0; i < a->sel->size(); ++i) {
    out.AppendRow(*a->in, (*a->sel)[i]);
  }
  double ms = sw.ElapsedMillis();
  if (out.num_rows() != a->sel->size()) std::abort();
  return ms;
}

double GatherKernelMs(const void* p) {
  const auto* a = static_cast<const GatherArgs*>(p);
  Stopwatch sw;
  Batch out = EmptyLike(*a->in);
  out.AppendGather(*a->in, *a->sel);
  double ms = sw.ElapsedMillis();
  if (out.num_rows() != a->sel->size()) std::abort();
  return ms;
}

// ------------------------------------------------------------------
// Hash aggregation: SUM(double), COUNT grouped by an int64 key.
// The baseline replicates the engine's pre-refactor HashAggNode
// faithfully: the same batch-sliced input, per-row group-key string
// encoding into a std::unordered_map, and per-row aggregate updates.
// Both paths pay the same source-slicing cost; the delta is the
// aggregation machinery itself.
// ------------------------------------------------------------------

struct AggArgs {
  const Batch* in;
};

double AggBaselineMs(const void* p) {
  const auto* a = static_cast<const AggArgs*>(p);
  VectorSource src(*a->in);  // input copy not timed for either path
  Stopwatch sw;
  struct GroupState {
    size_t first_row = 0;
    std::vector<double> sums, mins, maxs;
    int64_t count = 0;
  };
  std::unordered_map<std::string, GroupState> groups;
  ColumnVector key_col(TypeId::kInt64);
  Batch in;
  std::string key;
  while (true) {
    auto more = src.Next(&in, kDefaultBatchSize);
    if (!more.ok()) std::abort();
    if (!*more) break;
    for (size_t row = 0; row < in.num_rows(); ++row) {
      key.clear();
      int64_t k = in.column(0).ints()[row];
      key.append(reinterpret_cast<const char*>(&k), 8);
      auto [it, inserted] = groups.try_emplace(key);
      GroupState& g = it->second;
      if (inserted) {
        g.first_row = key_col.size();
        key_col.AppendFrom(in.column(0), row);
        g.sums.assign(2, 0.0);
        g.mins.assign(2, std::numeric_limits<double>::infinity());
        g.maxs.assign(2, -std::numeric_limits<double>::infinity());
      }
      ++g.count;
      double v = in.column(3).doubles()[row];
      g.sums[0] += v;
      g.mins[0] = std::min(g.mins[0], v);
      g.maxs[0] = std::max(g.maxs[0], v);
    }
  }
  // Emit in first-appearance order (as the old node did).
  std::vector<std::pair<size_t, const GroupState*>> ordered;
  ordered.reserve(groups.size());
  for (const auto& [kk, g] : groups) ordered.emplace_back(g.first_row, &g);
  std::sort(ordered.begin(), ordered.end());
  ColumnVector keys_out(TypeId::kInt64), sums_out(TypeId::kDouble);
  ColumnVector counts_out(TypeId::kInt64);
  for (const auto& [pos, g] : ordered) {
    keys_out.AppendFrom(key_col, pos);
    sums_out.doubles().push_back(g->sums[0]);
    counts_out.ints().push_back(g->count);
  }
  double ms = sw.ElapsedMillis();
  if (keys_out.size() == 0) std::abort();
  return ms;
}

double AggKernelMs(const void* p) {
  const auto* a = static_cast<const AggArgs*>(p);
  auto src = std::make_unique<VectorSource>(*a->in);  // copy not timed
  Stopwatch sw;
  HashAggNode agg(std::move(src), {0},
                  {{AggKind::kSum, 3}, {AggKind::kCount, 0}});
  Batch out;
  auto more = agg.Next(&out, std::numeric_limits<size_t>::max());
  double ms = sw.ElapsedMillis();
  if (!more.ok() || !*more || out.num_rows() == 0) std::abort();
  return ms;
}

// ------------------------------------------------------------------
// Compressed-execution ablations: the same data flowing through the
// same operators, stored once with encoded execution on (dictionary
// codes, RLE sidecars, zero-copy borrows) and once decoded to plain
// (the differential-reference path). Baseline = decoded / decode-first,
// kernel = encoded. Tables are pre-warmed so this measures execution,
// not chunk decode.
// ------------------------------------------------------------------

std::shared_ptr<const Schema> CompressedSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64},
                         {"g", TypeId::kString},
                         {"r", TypeId::kInt64},
                         {"v", TypeId::kDouble}},
                        {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::unique_ptr<Table> BuildCompressedTable(size_t rows, bool encoded) {
  TableOptions opts;
  opts.store.chunk_rows = 65536;
  opts.store.encoded_exec = encoded;
  if (encoded) {
    opts.store.forced_encodings = {Encoding::kPlain, Encoding::kDict,
                                   Encoding::kRle, Encoding::kPlain};
  }
  auto t = std::make_unique<Table>("compressed", CompressedSchema(), opts);
  // ~1000 distinct group strings (per-chunk dictionaries stay small) of
  // realistic length, and an int column in runs of 512 (RLE-friendly).
  std::vector<std::string> groups;
  groups.reserve(1000);
  for (int g = 0; g < 1000; ++g) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "segment_%04d_of_catalog", g);
    groups.push_back(buf);
  }
  Random rng(23);
  std::vector<ColumnVector> data;
  data.emplace_back(TypeId::kInt64);
  data.emplace_back(TypeId::kString);
  data.emplace_back(TypeId::kInt64);
  data.emplace_back(TypeId::kDouble);
  for (auto& c : data) c.Reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    data[0].ints().push_back(static_cast<int64_t>(i));
    data[1].strings().push_back(groups[rng.Uniform(1000)]);
    data[2].ints().push_back(static_cast<int64_t>(i / 512));
    data[3].doubles().push_back(rng.NextDouble() * 100.0);
  }
  Status st = t->LoadColumns(std::move(data));
  if (!st.ok()) std::abort();
  // Warm the pool so the timed loops never decode.
  Batch b;
  auto scan = t->Scan({0, 1, 2, 3});
  while (true) {
    auto more = scan->Next(&b, kDefaultBatchSize);
    if (!more.ok() || !*more) break;
  }
  return t;
}

struct TableArgs {
  const Table* table;
  int64_t lo = 0, hi = 0;  // rle_predicate range
};

double DictGroupByMs(const void* p) {
  const auto* a = static_cast<const TableArgs*>(p);
  Stopwatch sw;
  // Batch layout: 0 = g (string group key), 1 = v.
  HashAggNode agg(a->table->Scan({1, 3}), {0},
                  {{AggKind::kCount, 0}, {AggKind::kSum, 1}});
  Batch out;
  auto more = agg.Next(&out, std::numeric_limits<size_t>::max());
  double ms = sw.ElapsedMillis();
  if (!more.ok() || !*more || out.num_rows() == 0) std::abort();
  return ms;
}

double RlePredicateMs(const void* p) {
  const auto* a = static_cast<const TableArgs*>(p);
  Stopwatch sw;
  // Batch layout: 0 = k, 1 = r (run-length column).
  FilterNode f(a->table->Scan({0, 2}), Int64Between(1, a->lo, a->hi));
  Batch b;
  size_t survivors = 0;
  while (true) {
    auto more = f.Next(&b, kDefaultBatchSize);
    if (!more.ok()) std::abort();
    if (!*more) break;
    survivors += b.num_rows();
  }
  double ms = sw.ElapsedMillis();
  if (survivors == 0) std::abort();
  return ms;
}

// Zero-copy scan ablation: both paths consume the same encoded table;
// the baseline materializes every batch column to owned-plain storage
// first (what pre-borrow scans effectively did: copy out of the pool,
// decode dictionary codes to strings), the kernel reads the borrowed
// spans in place.
uint64_t ScanChecksum(const Table& table, bool decode_first) {
  Batch b;
  auto scan = table.Scan({0, 1, 2, 3});
  uint64_t sum = 0;
  while (true) {
    auto more = scan->Next(&b, kDefaultBatchSize);
    if (!more.ok() || !*more) break;
    if (decode_first) {
      for (size_t c = 0; c < b.num_columns(); ++c) {
        b.column(c).EnsureOwnedPlain();
      }
    }
    const int64_t* k = b.column(0).ints_data();
    const int64_t* r = b.column(2).ints_data();
    for (size_t i = 0; i < b.num_rows(); ++i) {
      sum += static_cast<uint64_t>(k[i]) + static_cast<uint64_t>(r[i]);
    }
    sum += b.column(1).StringAt(0).size();
  }
  return sum;
}

double ScanDecodeFirstMs(const void* p) {
  const auto* a = static_cast<const TableArgs*>(p);
  Stopwatch sw;
  if (ScanChecksum(*a->table, true) == 0) std::abort();
  return sw.ElapsedMillis();
}

double ScanZeroCopyMs(const void* p) {
  const auto* a = static_cast<const TableArgs*>(p);
  Stopwatch sw;
  if (ScanChecksum(*a->table, false) == 0) std::abort();
  return sw.ElapsedMillis();
}

void Report(JsonResultWriter* json, const char* name, size_t rows,
            double base_ms, double kern_ms) {
  double base_mrps = static_cast<double>(rows) / base_ms / 1e3;
  double kern_mrps = static_cast<double>(rows) / kern_ms / 1e3;
  std::printf("%-24s %10.2f ms -> %8.2f ms   %7.1f -> %7.1f Mrows/s   %5.2fx\n",
              name, base_ms, kern_ms, base_mrps, kern_mrps,
              base_ms / kern_ms);
  json->Metric(name, "rows", static_cast<double>(rows));
  json->Metric(name, "baseline_ms", base_ms);
  json->Metric(name, "kernel_ms", kern_ms);
  json->Metric(name, "baseline_mrps", base_mrps);
  json->Metric(name, "kernel_mrps", kern_mrps);
  json->Metric(name, "speedup", base_ms / kern_ms);
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  using namespace pdtstore;
  using namespace pdtstore::bench;
  const size_t rows = static_cast<size_t>(
      std::strtoull(FlagValue(argc, argv, "rows", "1000000").c_str(),
                    nullptr, 10));
  const int reps =
      std::atoi(FlagValue(argc, argv, "reps", "5").c_str());
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_exec.json");
  if (rows < 64) {
    // The anti-elision sanity guards assume at least a few survivors.
    std::fprintf(stderr, "error: --rows must be >= 64 (got %zu)\n", rows);
    return 1;
  }

  std::printf(
      "=== Selection-vector execution kernels vs row-at-a-time baseline "
      "(%zu rows) ===\n%-24s %*s\n",
      rows, "bench", 62, "baseline -> kernel");

  Batch input = MakeWideBatch(rows, /*seed=*/11);
  JsonResultWriter json;

  {
    // Engine-shaped input: kDefaultBatchSize slices with ~50%-selective
    // unpredictable keep bitmaps.
    Random rng(13);
    std::vector<Batch> slices;
    std::vector<std::vector<uint8_t>> keeps;
    for (size_t off = 0; off < rows; off += kDefaultBatchSize) {
      size_t end = std::min(rows, off + kDefaultBatchSize);
      Batch slice = EmptyLike(input);
      for (size_t c = 0; c < input.num_columns(); ++c) {
        slice.column(c).AppendRange(input.column(c), off, end);
      }
      std::vector<uint8_t> keep(end - off);
      for (auto& k : keep) k = rng.Uniform(2);
      slices.push_back(std::move(slice));
      keeps.push_back(std::move(keep));
    }
    FilterArgs args{&slices, &keeps};
    (void)FilterBaselineMs(&args);  // warm
    (void)FilterKernelMs(&args);
    Report(&json, "filter_compact", rows,
           BestOf(reps, FilterBaselineMs, &args),
           BestOf(reps, FilterKernelMs, &args));

    // Whole-batch gather through a 50% selection (join/sort shape).
    std::vector<uint8_t> keep(rows);
    for (auto& k : keep) k = rng.Uniform(2);
    SelVector sel = SelVector::FromKeep(keep.data(), rows);
    GatherArgs gargs{&input, &sel};
    (void)GatherBaselineMs(&gargs);
    (void)GatherKernelMs(&gargs);
    Report(&json, "selection_gather", sel.size(),
           BestOf(reps, GatherBaselineMs, &gargs),
           BestOf(reps, GatherKernelMs, &gargs));

    // Keep-bitmap ablation: byte-per-row keep (baseline) vs 1-bit
    // KeepBitmap (kernel) over the same sliced predicate+compaction
    // path, at 1% / 50% / 99% selectivity. Column 0 values are uniform
    // in [0, 2^24), so a threshold at the selectivity quantile keeps
    // roughly that fraction of rows.
    struct { const char* name; double selectivity; } sweeps[] = {
        {"keep_bitmap_sel1", 0.01},
        {"keep_bitmap_sel50", 0.50},
        {"keep_bitmap_sel99", 0.99},
    };
    for (const auto& sweep : sweeps) {
      KeepPathArgs kargs{
          &slices,
          static_cast<int64_t>(sweep.selectivity * double{1 << 24})};
      (void)KeepByteMs(&kargs);  // warm
      (void)KeepBitmapMs(&kargs);
      Report(&json, sweep.name, rows, BestOf(reps, KeepByteMs, &kargs),
             BestOf(reps, KeepBitmapMs, &kargs));
    }
  }

  {
    // Rewrite column 0 to a bounded group domain (64k groups at 1M rows).
    Random rng(17);
    auto& keys = input.column(0).ints();
    for (size_t i = 0; i < rows; ++i) {
      keys[i] = static_cast<int64_t>(rng.Uniform(rows / 16 + 1));
    }
    AggArgs args{&input};
    (void)AggBaselineMs(&args);
    (void)AggKernelMs(&args);
    Report(&json, "hash_agg", rows, BestOf(reps, AggBaselineMs, &args),
           BestOf(reps, AggKernelMs, &args));
  }

  {
    // Compressed-execution ablations (see the section comment above).
    auto encoded = BuildCompressedTable(rows, /*encoded=*/true);
    auto decoded = BuildCompressedTable(rows, /*encoded=*/false);

    TableArgs enc{encoded.get()};
    TableArgs dec{decoded.get()};
    (void)DictGroupByMs(&dec);  // warm
    (void)DictGroupByMs(&enc);
    Report(&json, "dict_group_by", rows, BestOf(reps, DictGroupByMs, &dec),
           BestOf(reps, DictGroupByMs, &enc));

    // ~6% selective range over the run-length column.
    enc.lo = dec.lo = static_cast<int64_t>(rows / 512 / 2);
    enc.hi = dec.hi = enc.lo + static_cast<int64_t>(rows / 512 / 16);
    (void)RlePredicateMs(&dec);
    (void)RlePredicateMs(&enc);
    Report(&json, "rle_predicate", rows, BestOf(reps, RlePredicateMs, &dec),
           BestOf(reps, RlePredicateMs, &enc));

    (void)ScanDecodeFirstMs(&enc);
    (void)ScanZeroCopyMs(&enc);
    Report(&json, "zero_copy_scan", rows,
           BestOf(reps, ScanDecodeFirstMs, &enc),
           BestOf(reps, ScanZeroCopyMs, &enc));

    // Cold scan with a zone-map hint: most chunks are proven dead by
    // their k min/max and never leave "disk". Reported as I/O bytes,
    // the paper's cold-scan currency.
    BufferPool* pool = encoded->buffer_pool();
    pool->EvictAll();
    pool->ResetStats();
    const int64_t klo = static_cast<int64_t>(rows / 2);
    const int64_t khi = klo + static_cast<int64_t>(rows / 16);
    ScanOptions zso;
    zso.zone_filters.push_back({0, Value(klo), Value(khi)});
    Stopwatch zsw;
    FilterNode zf(encoded->Scan({0, 3}, nullptr, zso),
                  Int64Between(0, klo, khi));
    Batch zb;
    uint64_t zrows = 0;
    while (true) {
      auto more = zf.Next(&zb, kDefaultBatchSize);
      if (!more.ok() || !*more) break;
      zrows += zb.num_rows();
    }
    const double zms = zsw.ElapsedMillis();
    const IoStats s = pool->stats();
    if (zrows == 0) std::abort();
    std::printf(
        "%-24s %10.2f ms   read %.1f KiB in %llu chunks, skipped %.1f KiB "
        "in %llu chunks\n",
        "zone_prune_cold_scan", zms, s.bytes_read / 1024.0,
        static_cast<unsigned long long>(s.chunks_read),
        s.bytes_skipped / 1024.0,
        static_cast<unsigned long long>(s.chunks_skipped));
    json.Metric("zone_prune_cold_scan", "scan_ms", zms);
    json.Metric("zone_prune_cold_scan", "bytes_read",
                static_cast<double>(s.bytes_read));
    json.Metric("zone_prune_cold_scan", "chunks_read",
                static_cast<double>(s.chunks_read));
    json.Metric("zone_prune_cold_scan", "bytes_skipped",
                static_cast<double>(s.bytes_skipped));
    json.Metric("zone_prune_cold_scan", "chunks_skipped",
                static_cast<double>(s.chunks_skipped));
  }

  if (json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

// Selection vector: the index list that ties the engine's typed kernels
// together (MonetDB/X100 style). A predicate or join produces row indices
// into a source batch; gather kernels then copy whole columns at once,
// dispatching on TypeId once per batch instead of once per value.
// The kernel contract is documented in DESIGN.md ("Selection-vector
// kernels").
#ifndef PDTSTORE_COLUMNSTORE_SEL_VECTOR_H_
#define PDTSTORE_COLUMNSTORE_SEL_VECTOR_H_

#include <cstdint>
#include <vector>

namespace pdtstore {

/// Row indices selected from a source batch, in output order (may repeat
/// for joins, may be non-monotonic for sorts). Indices are 32-bit: a
/// selection always targets an in-memory batch or materialized pipeline
/// intermediate, far below 2^32 rows.
class SelVector {
 public:
  SelVector() = default;

  /// Builds the selection of all i in [0, n) with keep[i] != 0, in one
  /// branchless pass (unconditional write, conditional advance) — an
  /// unpredictable keep bitmap costs no branch misses.
  static SelVector FromKeep(const uint8_t* keep, size_t n) {
    SelVector sel;
    sel.idx_.resize(n);
    size_t m = 0;
    for (size_t i = 0; i < n; ++i) {
      sel.idx_[m] = static_cast<uint32_t>(i);
      m += (keep[i] != 0);
    }
    sel.idx_.resize(m);
    return sel;
  }

  void clear() { idx_.clear(); }
  void reserve(size_t n) { idx_.reserve(n); }
  void push_back(uint32_t i) { idx_.push_back(i); }

  size_t size() const { return idx_.size(); }
  bool empty() const { return idx_.empty(); }
  uint32_t operator[](size_t i) const { return idx_[i]; }
  const uint32_t* data() const { return idx_.data(); }

  std::vector<uint32_t>& indices() { return idx_; }
  const std::vector<uint32_t>& indices() const { return idx_; }

 private:
  std::vector<uint32_t> idx_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_SEL_VECTOR_H_

// Figure 17 reproduction: MergeScan cost vs table size, key type and
// update rate — PDT vs VDT.
//
// The paper scans a table of 4 payload columns plus 1 key column (int or
// string) at 1M / 10M / 100M tuples with 0..2.5 updates per 100 tuples
// applied to the delta structure, and reports the full-projection scan
// time. PDT beats VDT by >= 3x, the VDT gap widens with string keys and
// with update rate, and both scale linearly with table size.
//
// Laptop-scale substitution (DESIGN.md): sizes default to 1M/4M/16M.
//
// In addition, a morsel-driven parallel-scan sweep runs the same
// workload at several worker-thread counts (both backends, ordered and
// unordered delivery for the PDT) and records per-thread-count rows/sec
// plus a `scalability` metric (4-thread / 1-thread throughput) under the
// `parallel_merge_scan` benchmark name in the JSON output.
//
// Usage: bench_fig17_mergescan_scaling [--sizes=1000000,4000000,16000000]
//                                      [--rates=0,0.5,1,1.5,2,2.5]
//                                      [--threads=1,2,4,8]
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

namespace pdtstore {
namespace bench {
namespace {

std::vector<double> ParseList(const std::string& s) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::strtod(s.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

void RunSize(uint64_t rows, bool string_keys,
             const std::vector<double>& rates, JsonResultWriter* json) {
  std::printf("# %zu tuples, %s key\n", static_cast<size_t>(rows),
              string_keys ? "string" : "int");
  std::printf("%-22s %-12s %-12s %-12s %-12s %-8s\n",
              "updates_per_100_tuples", "vdt_ms", "pdt_ms", "vdt_mrps",
              "pdt_mrps", "ratio");
  SyntheticSpec spec;
  spec.rows = rows;
  spec.string_keys = string_keys;
  spec.payload_cols = 4;

  // Build once per (size, key type); update rates are applied
  // cumulatively (each step adds the increment over the previous rate).
  spec.backend = DeltaBackend::kPdt;
  auto pdt_table = BuildSynthetic(spec);
  spec.backend = DeltaBackend::kVdt;
  auto vdt_table = BuildSynthetic(spec);

  double applied_rate = 0.0;
  int step = 0;
  for (double rate : rates) {
    double increment = rate - applied_rate;
    if (increment > 0) {
      uint64_t num_updates = static_cast<uint64_t>(
          static_cast<double>(rows) * increment / 100.0);
      auto updates =
          MakeUpdates(spec, num_updates, /*seed=*/23 + 100 * step);
      ApplyUpdates(pdt_table.get(), updates);
      ApplyUpdates(vdt_table.get(), updates);
      applied_rate = rate;
    }
    ++step;

    // Project the 4 payload columns ("a simple projection of all 4
    // columns"); the key column is *not* projected — the VDT reads it
    // anyway, the PDT does not.
    std::vector<ColumnId> projection;
    for (int c = 0; c < spec.payload_cols; ++c) {
      projection.push_back(static_cast<ColumnId>(spec.key_cols + c));
    }
    // Warm both (hot, memory-resident as in the paper's microbenchmark).
    (void)TimedScan(*pdt_table, projection);
    (void)TimedScan(*vdt_table, projection);
    double pdt_ms = 1e9, vdt_ms = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      pdt_ms = std::min(pdt_ms, TimedScan(*pdt_table, projection));
      vdt_ms = std::min(vdt_ms, TimedScan(*vdt_table, projection));
    }
    double vdt_mrps = static_cast<double>(rows) / vdt_ms / 1e3;
    double pdt_mrps = static_cast<double>(rows) / pdt_ms / 1e3;
    std::printf("%-22.2f %-12.2f %-12.2f %-12.1f %-12.1f %-8.2f\n", rate,
                vdt_ms, pdt_ms, vdt_mrps, pdt_mrps, vdt_ms / pdt_ms);
    if (json != nullptr) {
      char name[64];
      std::snprintf(name, sizeof(name), "mergescan_%zu_%s_rate%.1f",
                    static_cast<size_t>(rows),
                    string_keys ? "str" : "int", rate);
      json->Metric(name, "rows", static_cast<double>(rows));
      json->Metric(name, "vdt_ms", vdt_ms);
      json->Metric(name, "pdt_ms", pdt_ms);
      json->Metric(name, "vdt_mrps", vdt_mrps);
      json->Metric(name, "pdt_mrps", pdt_mrps);
      json->Metric(name, "ratio", vdt_ms / pdt_ms);
    }
  }
  std::printf("\n");
}

// Morsel-driven parallel MergeScan sweep: the first configured size at
// 1 update per 100 tuples (the paper's mid rate), scanned with 1..N
// worker threads. Records per-thread-count Mrows/s and the 4-thread
// scalability ratio under `parallel_merge_scan`.
void RunParallelSweep(uint64_t rows, const std::vector<double>& threads,
                      JsonResultWriter* json) {
  std::printf("# parallel MergeScan sweep, %zu tuples, int key, "
              "1 update/100 tuples\n",
              static_cast<size_t>(rows));
  std::printf("%-8s %-14s %-14s %-14s\n", "threads", "pdt_ord_mrps",
              "pdt_unord_mrps", "vdt_ord_mrps");
  SyntheticSpec spec;
  spec.rows = rows;
  spec.payload_cols = 4;
  spec.backend = DeltaBackend::kPdt;
  auto pdt_table = BuildSynthetic(spec);
  spec.backend = DeltaBackend::kVdt;
  auto vdt_table = BuildSynthetic(spec);
  auto updates = MakeUpdates(spec, rows / 100, /*seed=*/71);
  ApplyUpdates(pdt_table.get(), updates);
  ApplyUpdates(vdt_table.get(), updates);

  std::vector<ColumnId> projection;
  for (int c = 0; c < spec.payload_cols; ++c) {
    projection.push_back(static_cast<ColumnId>(spec.key_cols + c));
  }

  auto timed = [&](const Table& table, const ScanOptions& opts) {
    (void)TimedScan(table, projection, opts);  // warm
    double ms = 1e9;
    for (int rep = 0; rep < 3; ++rep) {
      ms = std::min(ms, TimedScan(table, projection, opts));
    }
    return static_cast<double>(rows) / ms / 1e3;  // Mrows/s
  };

  double pdt_base = 0.0, pdt_at4 = 0.0;
  for (double t : threads) {
    ScanOptions opts;
    opts.num_threads = static_cast<int>(t);
    opts.ordered = true;
    double pdt_ord = timed(*pdt_table, opts);
    double vdt_ord = timed(*vdt_table, opts);
    opts.ordered = false;
    double pdt_unord = timed(*pdt_table, opts);
    std::printf("%-8d %-14.1f %-14.1f %-14.1f\n", opts.num_threads,
                pdt_ord, pdt_unord, vdt_ord);
    if (opts.num_threads == 1) pdt_base = pdt_ord;
    if (opts.num_threads == 4) pdt_at4 = pdt_ord;
    if (json != nullptr) {
      char key[48];
      std::snprintf(key, sizeof(key), "pdt_ordered_t%d_mrps",
                    opts.num_threads);
      json->Metric("parallel_merge_scan", key, pdt_ord);
      std::snprintf(key, sizeof(key), "pdt_unordered_t%d_mrps",
                    opts.num_threads);
      json->Metric("parallel_merge_scan", key, pdt_unord);
      std::snprintf(key, sizeof(key), "vdt_ordered_t%d_mrps",
                    opts.num_threads);
      json->Metric("parallel_merge_scan", key, vdt_ord);
    }
  }
  if (json != nullptr) {
    json->Metric("parallel_merge_scan", "rows",
                 static_cast<double>(rows));
    if (pdt_base > 0 && pdt_at4 > 0) {
      json->Metric("parallel_merge_scan", "scalability",
                   pdt_at4 / pdt_base);
    }
    json->Metric("parallel_merge_scan", "hardware_threads",
                 static_cast<double>(ThreadPool::DefaultThreads()));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  using namespace pdtstore::bench;
  auto sizes = ParseList(
      FlagValue(argc, argv, "sizes", "1000000,4000000,16000000"));
  auto rates =
      ParseList(FlagValue(argc, argv, "rates", "0,0.5,1,1.5,2,2.5"));
  auto threads = ParseList(FlagValue(argc, argv, "threads", "1,2,4,8"));
  const std::string json_path =
      FlagValue(argc, argv, "json", "BENCH_fig17.json");
  std::printf(
      "=== Figure 17: MergeScan scaling and key type (PDT vs VDT) ===\n"
      "(paper sizes 1M/10M/100M substituted by laptop-scale sizes; "
      "shape, not absolute numbers, is the claim)\n\n");
  JsonResultWriter json;
  for (double size : sizes) {
    RunSize(static_cast<uint64_t>(size), /*string_keys=*/false, rates,
            &json);
    RunSize(static_cast<uint64_t>(size), /*string_keys=*/true, rates,
            &json);
  }
  if (!sizes.empty() && !threads.empty()) {
    RunParallelSweep(static_cast<uint64_t>(sizes.front()), threads, &json);
  }
  std::printf(
      "Expectation (paper): PDT >= 3x faster than VDT at nonzero update "
      "rates; VDT degrades with rate (esp. string keys); PDT flat; both "
      "linear in table size.\n");
  if (!json_path.empty() && !json.WriteFile(json_path)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

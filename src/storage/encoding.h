// Lightweight columnar chunk encodings. The paper's evaluation contrasts
// compressed (server, Fig. 19 plots 1-2) against uncompressed (workstation,
// plots 3-5) storage; sorted sort-key columns compress very well (delta),
// which is why the VDT's extra key I/O is smaller on the compressed config.
#ifndef PDTSTORE_STORAGE_ENCODING_H_
#define PDTSTORE_STORAGE_ENCODING_H_

#include <cstdint>
#include <string>

#include "columnstore/column_vector.h"
#include "util/status.h"

namespace pdtstore {

/// Physical encoding of one column chunk.
enum class Encoding : uint8_t {
  kPlain = 0,        ///< fixed-width values / length-prefixed strings
  kRle = 1,          ///< run-length (run_len varint + one plain value)
  kDeltaVarint = 2,  ///< int64 only: zig-zag varint deltas (sorted keys)
  kDict = 3,         ///< string only: dictionary + varint codes
  kForBitPack = 4,   ///< int64 only: frame-of-reference + bit packing
};

const char* EncodingToString(Encoding e);

/// Serializes `col` with the requested encoding into `out` (replaced).
Status EncodeColumn(const ColumnVector& col, Encoding encoding,
                    std::string* out);

/// Decodes `bytes` (produced by EncodeColumn with the same encoding and a
/// column of `count` values of type `type`) into `*out` (replaced).
/// With `keep_encoded`, dictionary chunks decode to live code vectors
/// (shared StringDict + precomputed hashes) and RLE chunks carry an
/// RleRuns sidecar — the compressed-execution representations; values are
/// identical either way.
Status DecodeColumn(const std::string& bytes, TypeId type, Encoding encoding,
                    size_t count, ColumnVector* out,
                    bool keep_encoded = false);

/// Picks a cheap, effective encoding for the chunk by sampling: sorted
/// int64 -> delta-varint; heavy runs -> RLE; low-cardinality strings ->
/// dict; otherwise plain. With `compression_enabled == false` always plain.
Encoding ChooseEncoding(const ColumnVector& col, bool compression_enabled);

// --- fixed-width helpers (exposed for the WAL and checkpoint formats) ---
// All fixed-width on-disk integers are explicit little-endian, so WAL
// segments, MANIFESTs and table images mean the same bytes on every
// host. The byte-shift codecs compile to single loads/stores on LE.

inline void PutFixed32(std::string* out, uint32_t v) {
  const char buf[4] = {
      static_cast<char>(v), static_cast<char>(v >> 8),
      static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  const char buf[8] = {
      static_cast<char>(v),       static_cast<char>(v >> 8),
      static_cast<char>(v >> 16), static_cast<char>(v >> 24),
      static_cast<char>(v >> 32), static_cast<char>(v >> 40),
      static_cast<char>(v >> 48), static_cast<char>(v >> 56)};
  out->append(buf, 8);
}

/// Reads a little-endian u32/u64 at `p` (caller checks bounds).
inline uint32_t DecodeFixed32(const char* p) {
  const uint8_t* b = reinterpret_cast<const uint8_t*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

// --- varint helpers (exposed for tests and the WAL) ---

/// Appends an unsigned LEB128 varint.
void PutVarint64(std::string* out, uint64_t v);
/// Reads a varint at *pos, advancing it. Returns Corruption on truncation.
Status GetVarint64(const std::string& in, size_t* pos, uint64_t* v);
/// Zig-zag encode/decode signed 64-bit.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace pdtstore

#endif  // PDTSTORE_STORAGE_ENCODING_H_

#include "tpch/update_stream.h"

#include <algorithm>

namespace pdtstore {
namespace tpch {

namespace {
// Mirrors the generator's key-space walk: enumerates the i-th *used* key
// (for delete sampling) and the i-th *hole* key (for refresh inserts).
struct KeySpace {
  int keys_per_32;
  int64_t order_count;

  explicit KeySpace(const GenOptions& gen)
      : keys_per_32(std::clamp(
            static_cast<int>(32 * (1.0 - gen.hole_fraction)), 1, 32)),
        order_count(OrderCountFor(gen)) {}

  // i-th used key, i in [0, order_count).
  int64_t UsedKey(int64_t i) const {
    // Block 0 contributes keys 1..keys_per_32-1 (key 0 does not exist).
    int64_t first_block = keys_per_32 - 1;
    if (i < first_block) return i + 1;
    i -= first_block;
    int64_t block = 1 + i / keys_per_32;
    return block * 32 + (i % keys_per_32);
  }

  // i-th hole key (strictly above-pattern keys within the used range).
  int64_t HoleKey(int64_t i) const {
    int64_t holes_per_32 = 32 - keys_per_32;
    if (holes_per_32 == 0) {
      // No holes configured: fall back to keys beyond the used range.
      return UsedKey(order_count - 1) + 1 + i;
    }
    int64_t block = i / holes_per_32;
    return block * 32 + keys_per_32 + (i % holes_per_32);
  }
};

GeneratedOrder Regenerate(const GenOptions& gen, int64_t key) {
  Random rng(gen.seed * 0x9e3779b97f4a7c15ULL + key);
  return MakeOrder(key, &rng, gen.scale_factor);
}
}  // namespace

StatusOr<std::vector<UpdateStream>> MakeUpdateStreams(const GenOptions& gen,
                                                      int num_streams,
                                                      double fraction) {
  if (num_streams <= 0 || fraction <= 0.0 || fraction >= 1.0) {
    return Status::InvalidArgument("bad update stream parameters");
  }
  KeySpace ks(gen);
  int64_t per_stream =
      std::max<int64_t>(1, static_cast<int64_t>(
                               static_cast<double>(ks.order_count) *
                               fraction));
  std::vector<UpdateStream> streams(num_streams);
  // Inserts: consecutive hole keys, partitioned across streams.
  int64_t hole_idx = 0;
  for (int s = 0; s < num_streams; ++s) {
    streams[s].inserts.reserve(per_stream);
    for (int64_t i = 0; i < per_stream; ++i) {
      streams[s].inserts.push_back(Regenerate(gen, ks.HoleKey(hole_idx++)));
    }
  }
  // Deletes: evenly spread, disjoint across streams.
  int64_t total_deletes = per_stream * num_streams;
  int64_t stride = std::max<int64_t>(1, ks.order_count / total_deletes);
  int64_t g = 0;
  for (int s = 0; s < num_streams; ++s) {
    streams[s].deletes.reserve(per_stream);
    for (int64_t i = 0; i < per_stream; ++i, ++g) {
      int64_t idx = std::min(g * stride, ks.order_count - 1);
      streams[s].deletes.push_back(Regenerate(gen, ks.UsedKey(idx)));
    }
  }
  return streams;
}

Status ApplyUpdateStream(const UpdateStream& stream, TpchTables* tables) {
  for (const GeneratedOrder& o : stream.inserts) {
    PDT_RETURN_NOT_OK(tables->orders->Insert(o.order));
    for (const Tuple& l : o.lineitems) {
      PDT_RETURN_NOT_OK(tables->lineitem->Insert(l));
    }
  }
  for (const GeneratedOrder& o : stream.deletes) {
    Status st = tables->orders->DeleteByKey(
        {o.order[kOOrderdate], o.order[kOOrderkey]});
    if (st.code() == StatusCode::kNotFound) continue;  // already deleted
    PDT_RETURN_NOT_OK(st);
    for (const Tuple& l : o.lineitems) {
      PDT_RETURN_NOT_OK(tables->lineitem->DeleteByKey(
          {l[kLOrderkey], l[kLLinenumber]}));
    }
  }
  return Status::OK();
}

Status ApplyUpdateStreamTxn(const UpdateStream& stream, TxnManager* orders,
                            TxnManager* lineitem, size_t orders_per_txn) {
  if (orders_per_txn == 0) orders_per_txn = 1;
  // Walk inserts then deletes in groups; each group is one transaction
  // per table (two commits riding the same group-commit fsync when the
  // managers share a WAL).
  auto commit_group = [&](size_t begin, size_t end,
                          bool inserts) -> Status {
    auto otxn = orders->Begin();
    auto ltxn = lineitem->Begin();
    for (size_t i = begin; i < end; ++i) {
      const GeneratedOrder& o =
          inserts ? stream.inserts[i] : stream.deletes[i];
      if (inserts) {
        PDT_RETURN_NOT_OK(otxn->Insert(o.order));
        for (const Tuple& l : o.lineitems) {
          PDT_RETURN_NOT_OK(ltxn->Insert(l));
        }
      } else {
        Status st = otxn->DeleteByKey(
            {o.order[kOOrderdate], o.order[kOOrderkey]});
        if (st.code() == StatusCode::kNotFound) continue;  // already gone
        PDT_RETURN_NOT_OK(st);
        for (const Tuple& l : o.lineitems) {
          PDT_RETURN_NOT_OK(ltxn->DeleteByKey(
              {l[kLOrderkey], l[kLLinenumber]}));
        }
      }
    }
    // Publish both lock-free, then await the verdicts: the fold batches
    // the pair, and both ride one fsync.
    PDT_RETURN_NOT_OK(otxn->Publish());
    PDT_RETURN_NOT_OK(ltxn->Publish());
    PDT_RETURN_NOT_OK(otxn->AwaitCommit());
    return ltxn->AwaitCommit();
  };
  for (size_t i = 0; i < stream.inserts.size(); i += orders_per_txn) {
    PDT_RETURN_NOT_OK(commit_group(
        i, std::min(i + orders_per_txn, stream.inserts.size()), true));
  }
  for (size_t i = 0; i < stream.deletes.size(); i += orders_per_txn) {
    PDT_RETURN_NOT_OK(commit_group(
        i, std::min(i + orders_per_txn, stream.deletes.size()), false));
  }
  return Status::OK();
}

}  // namespace tpch
}  // namespace pdtstore

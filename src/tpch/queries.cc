#include "tpch/queries.h"

#include <cmath>

#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "exec/sort.h"

namespace pdtstore {
namespace tpch {

namespace {

using Src = std::unique_ptr<BatchSource>;

// Drains a pipeline, counting rows and checksumming numeric cells.
StatusOr<QueryResult> Summarize(Src src) {
  QueryResult result;
  Batch batch;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, src->Next(&batch, kDefaultBatchSize));
    if (!more) break;
    result.rows += batch.num_rows();
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const ColumnVector& col = batch.column(c);
      if (col.type() == TypeId::kInt64) {
        for (int64_t v : col.ints()) {
          result.checksum += static_cast<double>(v);
        }
      } else if (col.type() == TypeId::kDouble) {
        for (double v : col.doubles()) result.checksum += v;
      }
    }
  }
  return result;
}

Src Agg(Src in, std::vector<size_t> keys, std::vector<AggSpec> aggs) {
  return std::make_unique<HashAggNode>(std::move(in), std::move(keys),
                                       std::move(aggs));
}
Src Filter(Src in, VecPredicate p) {
  return std::make_unique<FilterNode>(std::move(in), std::move(p));
}
Src Project(Src in, std::vector<ColumnExpr> exprs) {
  return std::make_unique<ProjectNode>(std::move(in), std::move(exprs));
}
Src Join(Src probe, Src build, std::vector<size_t> pk,
         std::vector<size_t> bk, JoinKind kind = JoinKind::kInner) {
  return std::make_unique<HashJoinNode>(std::move(probe), std::move(build),
                                        std::move(pk), std::move(bk), kind);
}
Src Sort(Src in, std::vector<SortKey> keys, size_t limit = 0) {
  return std::make_unique<SortNode>(std::move(in), std::move(keys), limit);
}

// Q1: pricing summary report. Full lineitem scan minus the last ~90 days.
StatusOr<QueryResult> Q1(const TpchTables& t) {
  Src scan = t.lineitem->Scan({kLReturnflag, kLLinestatus, kLQuantity,
                               kLExtendedprice, kLDiscount, kLTax,
                               kLShipdate});
  Src flt = Filter(std::move(scan), Int64Between(6, kMinDate,
                                                 DayNumber(1998, 9, 2)));
  Src proj = Project(std::move(flt),
                     {ColumnRef(0), ColumnRef(1), ColumnRef(2), ColumnRef(3),
                      Revenue(3, 4), Charge(3, 4, 5), ColumnRef(4)});
  Src agg = Agg(std::move(proj), {0, 1},
                {{AggKind::kSum, 2},
                 {AggKind::kSum, 3},
                 {AggKind::kSum, 4},
                 {AggKind::kSum, 5},
                 {AggKind::kAvg, 2},
                 {AggKind::kAvg, 3},
                 {AggKind::kAvg, 6},
                 {AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}, {1}}));
}

// Q2: minimum-cost supplier (part x supplier; no updated tables).
StatusOr<QueryResult> Q2(const TpchTables& t) {
  Src part = t.part->Scan({kPPartkey, kPType, kPSize});
  Src flt = Filter(std::move(part), Int64Between(2, 15, 15));
  Src supp = t.supplier->Scan({kSSuppkey, kSNationkey, kSAcctbal});
  // Supplier for a part: suppkey ~ partkey mod |supplier| (the generated
  // partsupp relation is implicit).
  Src proj = Project(std::move(flt),
                     {ColumnRef(0), [](const Batch& b) {
                        ColumnVector out(TypeId::kInt64);
                        const auto& pk = b.column(0).ints();
                        out.ints().resize(pk.size());
                        for (size_t i = 0; i < pk.size(); ++i) {
                          out.ints()[i] = 1 + (pk[i] % 25);
                        }
                        return out;
                      }});
  Src joined = Join(std::move(proj), std::move(supp), {1}, {0});
  Src agg = Agg(std::move(joined), {3},
                {{AggKind::kMin, 4}, {AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}}, 100));
}

// Q3: shipping priority. customer(segment) x orders(date<) x lineitem.
StatusOr<QueryResult> Q3(const TpchTables& t) {
  int64_t cutoff = DayNumber(1995, 3, 15);
  Src cust = Filter(t.customer->Scan({kCCustkey, kCMktsegment}),
                    StringEquals(1, "BUILDING"));
  KeyBounds order_bounds;
  order_bounds.hi = {Value(cutoff)};
  Src ord = t.orders->Scan({kOOrderkey, kOCustkey, kOOrderdate,
                            kOShippriority},
                           &order_bounds);
  Src ord_flt = Filter(std::move(ord), Int64Between(2, kMinDate, cutoff - 1));
  Src ord_cust = Join(std::move(ord_flt), std::move(cust), {1}, {0},
                      JoinKind::kLeftSemi);
  Src line = Filter(
      t.lineitem->Scan({kLOrderkey, kLExtendedprice, kLDiscount, kLShipdate}),
      Int64Between(3, cutoff + 1, kMaxDate));
  Src joined = Join(std::move(line), std::move(ord_cust), {0}, {0});
  Src proj = Project(std::move(joined),
                     {ColumnRef(0), Revenue(1, 2), ColumnRef(6),
                      ColumnRef(7)});
  Src agg = Agg(std::move(proj), {0, 2, 3},
                {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{3, true}, {1}}, 10));
}

// Q4: order priority checking. orders(quarter) semi-join late lineitems.
StatusOr<QueryResult> Q4(const TpchTables& t) {
  int64_t lo = DayNumber(1993, 7, 1), hi = DayNumber(1993, 10, 1) - 1;
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Src ord = t.orders->Scan({kOOrderdate, kOOrderkey, kOOrderpriority},
                           &bounds);
  Src ord_flt = Filter(std::move(ord), Int64Between(0, lo, hi));
  Src late = Filter(t.lineitem->Scan({kLOrderkey, kLCommitdate,
                                      kLReceiptdate}),
                    [](const Batch& b, std::vector<uint8_t>* keep) {
                      const auto& commit = b.column(1).ints();
                      const auto& receipt = b.column(2).ints();
                      for (size_t i = 0; i < commit.size(); ++i) {
                        (*keep)[i] = commit[i] < receipt[i];
                      }
                    });
  Src semi = Join(std::move(ord_flt), std::move(late), {1}, {0},
                  JoinKind::kLeftSemi);
  Src agg = Agg(std::move(semi), {2}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q5: local supplier volume. lineitem x orders(year) x customer nation.
StatusOr<QueryResult> Q5(const TpchTables& t) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Src ord = Filter(t.orders->Scan({kOOrderdate, kOOrderkey, kOCustkey},
                                  &bounds),
                   Int64Between(0, lo, hi));
  Src cust = t.customer->Scan({kCCustkey, kCNationkey});
  Src ord_cust = Join(std::move(ord), std::move(cust), {2}, {0});
  Src line = t.lineitem->Scan({kLOrderkey, kLSuppkey, kLExtendedprice,
                               kLDiscount});
  Src joined = Join(std::move(line), std::move(ord_cust), {0}, {1});
  // nation of the customer groups the revenue.
  Src proj = Project(std::move(joined), {ColumnRef(8), Revenue(2, 3)});
  Src agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}));
}

// Q6: forecasting revenue change. Pure lineitem scan (the paper's
// poster-child for merge CPU overhead).
StatusOr<QueryResult> Q6(const TpchTables& t) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  Src scan = t.lineitem->Scan({kLShipdate, kLDiscount, kLQuantity,
                               kLExtendedprice});
  Src flt = Filter(std::move(scan),
                   And({Int64Between(0, lo, hi), DoubleInRange(1, 0.05, 0.0701),
                        DoubleInRange(2, 0.0, 24.0)}));
  Src proj = Project(std::move(flt), {[](const Batch& b) {
    ColumnVector out(TypeId::kDouble);
    const auto& price = b.column(3).doubles();
    const auto& disc = b.column(1).doubles();
    out.doubles().resize(price.size());
    for (size_t i = 0; i < price.size(); ++i) {
      out.doubles()[i] = price[i] * disc[i];
    }
    return out;
  }});
  return Summarize(Agg(std::move(proj), {}, {{AggKind::kSum, 0}}));
}

// Q7: volume shipping between two nations, grouped by year.
StatusOr<QueryResult> Q7(const TpchTables& t) {
  int64_t lo = DayNumber(1995, 1, 1), hi = DayNumber(1996, 12, 31);
  Src line = Filter(t.lineitem->Scan({kLOrderkey, kLSuppkey, kLShipdate,
                                      kLExtendedprice, kLDiscount}),
                    Int64Between(2, lo, hi));
  Src supp = Filter(t.supplier->Scan({kSSuppkey, kSNationkey}),
                    Int64Between(1, 6, 7));  // FRANCE / GERMANY
  Src line_supp = Join(std::move(line), std::move(supp), {1}, {0},
                       JoinKind::kLeftSemi);
  Src ord = t.orders->Scan({kOOrderkey, kOCustkey});
  Src joined = Join(std::move(line_supp), std::move(ord), {0}, {0});
  Src proj = Project(std::move(joined), {[](const Batch& b) {
                       ColumnVector out(TypeId::kInt64);
                       const auto& d = b.column(2).ints();
                       out.ints().resize(d.size());
                       for (size_t i = 0; i < d.size(); ++i) {
                         out.ints()[i] = 1992 + d[i] / 365;
                       }
                       return out;
                     },
                     Revenue(3, 4)});
  Src agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q8: national market share by year.
StatusOr<QueryResult> Q8(const TpchTables& t) {
  int64_t lo = DayNumber(1995, 1, 1), hi = DayNumber(1996, 12, 31);
  Src part = Filter(t.part->Scan({kPPartkey, kPType}),
                    StringEquals(1, "ECONOMY ANODIZED STEEL"));
  Src line = t.lineitem->Scan({kLOrderkey, kLPartkey, kLExtendedprice,
                               kLDiscount});
  Src line_part = Join(std::move(line), std::move(part), {1}, {0},
                       JoinKind::kLeftSemi);
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Src ord = Filter(t.orders->Scan({kOOrderdate, kOOrderkey}, &bounds),
                   Int64Between(0, lo, hi));
  Src joined = Join(std::move(line_part), std::move(ord), {0}, {1});
  Src proj = Project(std::move(joined), {[](const Batch& b) {
                       ColumnVector out(TypeId::kInt64);
                       const auto& d = b.column(4).ints();
                       out.ints().resize(d.size());
                       for (size_t i = 0; i < d.size(); ++i) {
                         out.ints()[i] = 1992 + d[i] / 365;
                       }
                       return out;
                     },
                     Revenue(2, 3)});
  Src agg = Agg(std::move(proj), {0},
                {{AggKind::kSum, 1}, {AggKind::kAvg, 1}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q9: product type profit measure, by year.
StatusOr<QueryResult> Q9(const TpchTables& t) {
  Src part = Filter(t.part->Scan({kPPartkey, kPName}),
                    [](const Batch& b, std::vector<uint8_t>* keep) {
                      const auto& names = b.column(1).strings();
                      for (size_t i = 0; i < names.size(); ++i) {
                        (*keep)[i] =
                            names[i].find("green") != std::string::npos;
                      }
                    });
  Src line = t.lineitem->Scan({kLOrderkey, kLPartkey, kLQuantity,
                               kLExtendedprice, kLDiscount});
  Src line_part = Join(std::move(line), std::move(part), {1}, {0},
                       JoinKind::kLeftSemi);
  Src ord = t.orders->Scan({kOOrderkey, kOOrderdate});
  Src joined = Join(std::move(line_part), std::move(ord), {0}, {0});
  Src proj = Project(std::move(joined), {[](const Batch& b) {
                       ColumnVector out(TypeId::kInt64);
                       const auto& d = b.column(6).ints();
                       out.ints().resize(d.size());
                       for (size_t i = 0; i < d.size(); ++i) {
                         out.ints()[i] = 1992 + d[i] / 365;
                       }
                       return out;
                     },
                     [](const Batch& b) {
                       // profit ~ revenue - supplycost*qty
                       ColumnVector out(TypeId::kDouble);
                       const auto& price = b.column(3).doubles();
                       const auto& disc = b.column(4).doubles();
                       const auto& qty = b.column(2).doubles();
                       out.doubles().resize(price.size());
                       for (size_t i = 0; i < price.size(); ++i) {
                         out.doubles()[i] =
                             price[i] * (1.0 - disc[i]) - 500.0 * qty[i];
                       }
                       return out;
                     }});
  Src agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{0, true}}));
}

// Q10: returned item reporting. Top customers by lost revenue.
StatusOr<QueryResult> Q10(const TpchTables& t) {
  int64_t lo = DayNumber(1993, 10, 1), hi = DayNumber(1994, 1, 1) - 1;
  KeyBounds bounds;
  bounds.lo = {Value(lo)};
  bounds.hi = {Value(hi)};
  Src ord = Filter(t.orders->Scan({kOOrderdate, kOOrderkey, kOCustkey},
                                  &bounds),
                   Int64Between(0, lo, hi));
  Src line = Filter(t.lineitem->Scan({kLOrderkey, kLExtendedprice,
                                      kLDiscount, kLReturnflag}),
                    StringEquals(3, "R"));
  Src joined = Join(std::move(line), std::move(ord), {0}, {1});
  Src proj = Project(std::move(joined), {ColumnRef(6), Revenue(1, 2)});
  Src agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}, 20));
}

// Q11: important stock identification (part x supplier only).
StatusOr<QueryResult> Q11(const TpchTables& t) {
  Src supp = Filter(t.supplier->Scan({kSSuppkey, kSNationkey}),
                    Int64Between(1, 7, 7));
  Src part = t.part->Scan({kPPartkey, kPRetailprice});
  Src proj = Project(std::move(part),
                     {ColumnRef(0), ColumnRef(1), [](const Batch& b) {
                        ColumnVector out(TypeId::kInt64);
                        const auto& pk = b.column(0).ints();
                        out.ints().resize(pk.size());
                        for (size_t i = 0; i < pk.size(); ++i) {
                          out.ints()[i] = 1 + (pk[i] % 25);
                        }
                        return out;
                      }});
  Src joined = Join(std::move(proj), std::move(supp), {2}, {0},
                    JoinKind::kLeftSemi);
  Src agg = Agg(std::move(joined), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}, 50));
}

// Q12: shipping modes and order priority.
StatusOr<QueryResult> Q12(const TpchTables& t) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  Src line = Filter(
      t.lineitem->Scan({kLOrderkey, kLShipmode, kLCommitdate,
                        kLReceiptdate, kLShipdate}),
      [lo, hi](const Batch& b, std::vector<uint8_t>* keep) {
        const auto& mode = b.column(1).strings();
        const auto& commit = b.column(2).ints();
        const auto& receipt = b.column(3).ints();
        const auto& ship = b.column(4).ints();
        for (size_t i = 0; i < mode.size(); ++i) {
          (*keep)[i] = (mode[i] == "MAIL" || mode[i] == "SHIP") &&
                       commit[i] < receipt[i] && ship[i] < commit[i] &&
                       receipt[i] >= lo && receipt[i] <= hi;
        }
      });
  Src ord = t.orders->Scan({kOOrderkey, kOOrderpriority});
  Src joined = Join(std::move(line), std::move(ord), {0}, {0});
  Src proj = Project(std::move(joined),
                     {ColumnRef(1), [](const Batch& b) {
                        // high-priority indicator
                        ColumnVector out(TypeId::kInt64);
                        const auto& prio = b.column(6).strings();
                        out.ints().resize(prio.size());
                        for (size_t i = 0; i < prio.size(); ++i) {
                          out.ints()[i] = (prio[i] == "1-URGENT" ||
                                           prio[i] == "2-HIGH")
                                              ? 1
                                              : 0;
                        }
                        return out;
                      }});
  Src agg = Agg(std::move(proj), {0},
                {{AggKind::kSum, 1}, {AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

// Q13: customer distribution (orders only among updated tables).
StatusOr<QueryResult> Q13(const TpchTables& t) {
  Src ord = t.orders->Scan({kOCustkey});
  Src per_cust = Agg(std::move(ord), {0}, {{AggKind::kCount, 0}});
  Src dist = Agg(std::move(per_cust), {1}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(dist), {{1, true}, {0, true}}));
}

// Q14: promotion effect.
StatusOr<QueryResult> Q14(const TpchTables& t) {
  int64_t lo = DayNumber(1995, 9, 1), hi = DayNumber(1995, 10, 1) - 1;
  Src line = Filter(t.lineitem->Scan({kLPartkey, kLExtendedprice,
                                      kLDiscount, kLShipdate}),
                    Int64Between(3, lo, hi));
  Src part = t.part->Scan({kPPartkey, kPType});
  Src joined = Join(std::move(line), std::move(part), {0}, {0});
  Src proj = Project(std::move(joined), {[](const Batch& b) {
                       // promo revenue
                       ColumnVector out(TypeId::kDouble);
                       const auto& price = b.column(1).doubles();
                       const auto& disc = b.column(2).doubles();
                       const auto& type = b.column(5).strings();
                       out.doubles().resize(price.size());
                       for (size_t i = 0; i < price.size(); ++i) {
                         bool promo = type[i].rfind("PROMO", 0) == 0;
                         out.doubles()[i] =
                             promo ? price[i] * (1.0 - disc[i]) : 0.0;
                       }
                       return out;
                     },
                     Revenue(1, 2)});
  return Summarize(
      Agg(std::move(proj), {}, {{AggKind::kSum, 0}, {AggKind::kSum, 1}}));
}

// Q15: top supplier by quarterly revenue.
StatusOr<QueryResult> Q15(const TpchTables& t) {
  int64_t lo = DayNumber(1996, 1, 1), hi = DayNumber(1996, 4, 1) - 1;
  Src line = Filter(t.lineitem->Scan({kLSuppkey, kLExtendedprice,
                                      kLDiscount, kLShipdate}),
                    Int64Between(3, lo, hi));
  Src proj = Project(std::move(line), {ColumnRef(0), Revenue(1, 2)});
  Src agg = Agg(std::move(proj), {0}, {{AggKind::kSum, 1}});
  return Summarize(Sort(std::move(agg), {{1, true}}, 1));
}

// Q16: parts/supplier relationship (no updated tables).
StatusOr<QueryResult> Q16(const TpchTables& t) {
  Src part = Filter(t.part->Scan({kPPartkey, kPBrand, kPType, kPSize}),
                    [](const Batch& b, std::vector<uint8_t>* keep) {
                      const auto& brand = b.column(1).strings();
                      const auto& size = b.column(3).ints();
                      for (size_t i = 0; i < brand.size(); ++i) {
                        (*keep)[i] = brand[i] != "Brand#45" &&
                                     (size[i] == 9 || size[i] == 19 ||
                                      size[i] == 49 || size[i] == 3 ||
                                      size[i] == 36 || size[i] == 14 ||
                                      size[i] == 23 || size[i] == 45);
                      }
                    });
  Src agg = Agg(std::move(part), {1, 3}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{2, true}, {0}}));
}

// Q17: small-quantity-order revenue: lineitems below 20% of the average
// quantity of their part.
StatusOr<QueryResult> Q17(const TpchTables& t) {
  Src part = Filter(t.part->Scan({kPPartkey, kPBrand, kPContainer}),
                    And({StringEquals(1, "Brand#23"),
                         StringEquals(2, "MED BOX")}));
  Src line = t.lineitem->Scan({kLPartkey, kLQuantity, kLExtendedprice});
  Src line_part = Join(std::move(line), std::move(part), {0}, {0},
                       JoinKind::kLeftSemi);
  PDT_ASSIGN_OR_RETURN(Batch filtered,
                       MaterializeAll(line_part.get()));
  // Two passes: per-part average quantity, then the selective sum.
  Src pass1 = std::make_unique<VectorSource>(filtered);
  Src avg = Agg(std::move(pass1), {0}, {{AggKind::kAvg, 1}});
  Src pass2 = std::make_unique<VectorSource>(filtered);
  Src joined = Join(std::move(pass2), std::move(avg), {0}, {0});
  Src flt = Filter(std::move(joined),
                   [](const Batch& b, std::vector<uint8_t>* keep) {
                     const auto& qty = b.column(1).doubles();
                     const auto& avg_q = b.column(4).doubles();
                     for (size_t i = 0; i < qty.size(); ++i) {
                       (*keep)[i] = qty[i] < 0.2 * avg_q[i];
                     }
                   });
  return Summarize(Agg(std::move(flt), {}, {{AggKind::kSum, 2}}));
}

// Q18: large volume customers.
StatusOr<QueryResult> Q18(const TpchTables& t) {
  Src line = t.lineitem->Scan({kLOrderkey, kLQuantity});
  Src per_order = Agg(std::move(line), {0}, {{AggKind::kSum, 1}});
  Src big = Filter(std::move(per_order),
                   DoubleInRange(1, 250.0, 1e18));
  Src ord = t.orders->Scan({kOOrderkey, kOCustkey, kOOrderdate,
                            kOTotalprice});
  Src joined = Join(std::move(big), std::move(ord), {0}, {0});
  return Summarize(Sort(std::move(joined), {{5, true}, {4}}, 100));
}

// Q19: discounted revenue (disjunctive part/lineitem predicates).
StatusOr<QueryResult> Q19(const TpchTables& t) {
  Src line = Filter(t.lineitem->Scan({kLPartkey, kLQuantity,
                                      kLExtendedprice, kLDiscount,
                                      kLShipmode}),
                    [](const Batch& b, std::vector<uint8_t>* keep) {
                      const auto& mode = b.column(4).strings();
                      for (size_t i = 0; i < mode.size(); ++i) {
                        (*keep)[i] = mode[i] == "AIR" || mode[i] == "REG AIR";
                      }
                    });
  Src part = t.part->Scan({kPPartkey, kPBrand, kPSize});
  Src joined = Join(std::move(line), std::move(part), {0}, {0});
  Src flt = Filter(std::move(joined),
                   [](const Batch& b, std::vector<uint8_t>* keep) {
                     const auto& qty = b.column(1).doubles();
                     const auto& brand = b.column(6).strings();
                     const auto& size = b.column(7).ints();
                     for (size_t i = 0; i < qty.size(); ++i) {
                       bool p1 = brand[i] == "Brand#12" && qty[i] <= 11 &&
                                 size[i] <= 5;
                       bool p2 = brand[i] == "Brand#23" && qty[i] >= 10 &&
                                 qty[i] <= 20 && size[i] <= 10;
                       bool p3 = brand[i] == "Brand#34" && qty[i] >= 20 &&
                                 qty[i] <= 30 && size[i] <= 15;
                       (*keep)[i] = p1 || p2 || p3;
                     }
                   });
  Src proj = Project(std::move(flt), {Revenue(2, 3)});
  return Summarize(Agg(std::move(proj), {}, {{AggKind::kSum, 0}}));
}

// Q20: potential part promotion: suppliers with surplus stock.
StatusOr<QueryResult> Q20(const TpchTables& t) {
  int64_t lo = DayNumber(1994, 1, 1), hi = DayNumber(1995, 1, 1) - 1;
  Src part = Filter(t.part->Scan({kPPartkey, kPName}),
                    [](const Batch& b, std::vector<uint8_t>* keep) {
                      const auto& names = b.column(1).strings();
                      for (size_t i = 0; i < names.size(); ++i) {
                        (*keep)[i] =
                            names[i].rfind("forest", 0) == 0 ||
                            names[i].find("azure") != std::string::npos;
                      }
                    });
  Src line = Filter(t.lineitem->Scan({kLPartkey, kLSuppkey, kLQuantity,
                                      kLShipdate}),
                    Int64Between(3, lo, hi));
  Src line_part = Join(std::move(line), std::move(part), {0}, {0},
                       JoinKind::kLeftSemi);
  Src per_supp = Agg(std::move(line_part), {1}, {{AggKind::kSum, 2}});
  Src supp = t.supplier->Scan({kSSuppkey, kSNationkey});
  Src joined = Join(std::move(per_supp), std::move(supp), {0}, {0});
  return Summarize(Sort(std::move(joined), {{0}}));
}

// Q21: suppliers who kept orders waiting.
StatusOr<QueryResult> Q21(const TpchTables& t) {
  Src ord = Filter(t.orders->Scan({kOOrderkey, kOOrderstatus}),
                   StringEquals(1, "F"));
  Src line = Filter(t.lineitem->Scan({kLOrderkey, kLSuppkey, kLCommitdate,
                                      kLReceiptdate}),
                    [](const Batch& b, std::vector<uint8_t>* keep) {
                      const auto& commit = b.column(2).ints();
                      const auto& receipt = b.column(3).ints();
                      for (size_t i = 0; i < commit.size(); ++i) {
                        (*keep)[i] = receipt[i] > commit[i];
                      }
                    });
  Src joined = Join(std::move(line), std::move(ord), {0}, {0},
                    JoinKind::kLeftSemi);
  Src agg = Agg(std::move(joined), {1}, {{AggKind::kCount, 0}});
  return Summarize(Sort(std::move(agg), {{1, true}, {0}}, 100));
}

// Q22: global sales opportunity: well-off customers without orders.
StatusOr<QueryResult> Q22(const TpchTables& t) {
  Src cust = Filter(t.customer->Scan({kCCustkey, kCNationkey, kCAcctbal}),
                    DoubleInRange(2, 0.0, 1e18));
  Src ord = t.orders->Scan({kOCustkey});
  Src anti = Join(std::move(cust), std::move(ord), {0}, {0},
                  JoinKind::kLeftAnti);
  Src agg = Agg(std::move(anti), {1},
                {{AggKind::kCount, 0}, {AggKind::kSum, 2}});
  return Summarize(Sort(std::move(agg), {{0}}));
}

}  // namespace

bool QueryTouchesUpdatedTables(int q) {
  return q != 2 && q != 11 && q != 16;
}

StatusOr<QueryResult> RunTpchQuery(int q, const TpchTables& tables) {
  switch (q) {
    case 1:
      return Q1(tables);
    case 2:
      return Q2(tables);
    case 3:
      return Q3(tables);
    case 4:
      return Q4(tables);
    case 5:
      return Q5(tables);
    case 6:
      return Q6(tables);
    case 7:
      return Q7(tables);
    case 8:
      return Q8(tables);
    case 9:
      return Q9(tables);
    case 10:
      return Q10(tables);
    case 11:
      return Q11(tables);
    case 12:
      return Q12(tables);
    case 13:
      return Q13(tables);
    case 14:
      return Q14(tables);
    case 15:
      return Q15(tables);
    case 16:
      return Q16(tables);
    case 17:
      return Q17(tables);
    case 18:
      return Q18(tables);
    case 19:
      return Q19(tables);
    case 20:
      return Q20(tables);
    case 21:
      return Q21(tables);
    case 22:
      return Q22(tables);
    default:
      return Status::InvalidArgument("unknown TPC-H query number");
  }
}

}  // namespace tpch
}  // namespace pdtstore

#include "exec/scan_node.h"

namespace pdtstore {

std::unique_ptr<BatchSource> TableScanNode(const Table& table,
                                           std::vector<ColumnId> projection,
                                           const KeyBounds* bounds,
                                           const ScanOptions& scan_opts) {
  return table.Scan(std::move(projection), bounds, scan_opts);
}

}  // namespace pdtstore

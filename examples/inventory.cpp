// The paper's running example (Figures 1-13): the inventory table with
// sort key (store, prod), three update batches, and the resulting PDT
// states. Run it next to Section 2.1 of the paper.
//
//   $ ./example_inventory
#include <cstdio>

#include "db/table.h"
#include "pdt/update_entry.h"

using namespace pdtstore;

namespace {

void PrintTable(Table& table, const char* title) {
  std::printf("%s\n", title);
  std::printf("  %-8s %-7s %-4s %-4s %-4s %-4s\n", "store", "prod", "new",
              "qty", "SID", "RID");
  for (Rid rid = 0; rid < table.RowCount(); ++rid) {
    Tuple t = *table.GetMergedTuple(rid);
    Pdt::RidLookup lk = table.pdt()->LookupRid(rid);
    std::string sid = lk.is_insert ? "ins" : std::to_string(lk.sid);
    std::printf("  %-8s %-7s %-4s %-4lld %-4s %-4llu\n",
                t[0].AsString().c_str(), t[1].AsString().c_str(),
                t[2].AsString().c_str(),
                static_cast<long long>(t[3].AsInt64()), sid.c_str(),
                static_cast<unsigned long long>(rid));
  }
}

void PrintPdt(const Pdt& pdt, const char* title) {
  std::printf("%s: %s\n\n", title, pdt.DebugString().c_str());
}

}  // namespace

int main() {
  auto schema_or = Schema::Make({{"store", TypeId::kString},
                                 {"prod", TypeId::kString},
                                 {"new", TypeId::kString},
                                 {"qty", TypeId::kInt64}},
                                {0, 1});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  Table inventory("inventory", schema, TableOptions{});
  // Figure 1: TABLE0.
  (void)inventory.Load({{"London", "chair", "N", 30},
                        {"London", "stool", "N", 10},
                        {"London", "table", "N", 20},
                        {"Paris", "rug", "N", 1},
                        {"Paris", "stool", "N", 5}});
  PrintTable(inventory, "TABLE0 (Figure 1):");
  std::printf("\n");

  // BATCH1 (Figure 2): three inserts, all landing before the stable data.
  (void)inventory.Insert({"Berlin", "table", "Y", 10});
  (void)inventory.Insert({"Berlin", "cloth", "Y", 5});
  (void)inventory.Insert({"Berlin", "chair", "Y", 20});
  PrintTable(inventory, "TABLE1 (Figure 5):");
  PrintPdt(*inventory.pdt(), "PDT1 (Figure 3): all inserts share SID 0");

  // BATCH2 (Figure 6): two modifies and two deletes. Note the delete of
  // the just-inserted (Berlin,table) removes its INS entirely, and the
  // qty modify of the inserted (Berlin,cloth) patches the insert space.
  (void)inventory.ModifyByKey({Value("Berlin"), Value("cloth")}, 3, Value(1));
  (void)inventory.ModifyByKey({Value("London"), Value("stool")}, 3, Value(9));
  (void)inventory.DeleteByKey({Value("Berlin"), Value("table")});
  (void)inventory.DeleteByKey({Value("Paris"), Value("rug")});
  PrintTable(inventory, "TABLE2 (Figure 9):");
  PrintPdt(*inventory.pdt(),
           "PDT2 (Figure 7): one ghost DEL, one qty modify");

  // BATCH3 (Figure 10): three more inserts. (Paris,rack) receives SID 3 —
  // the ghost (Paris,rug)'s SID — because SIDs respect deleted tuples,
  // keeping sparse indexes built on TABLE0 valid ("Respecting Deletes").
  (void)inventory.Insert({"Paris", "rack", "Y", 4});
  (void)inventory.Insert({"London", "rack", "Y", 4});
  (void)inventory.Insert({"Berlin", "rack", "Y", 4});
  PrintTable(inventory, "TABLE3 (Figure 13):");
  PrintPdt(*inventory.pdt(), "PDT3 (Figure 11)");

  // The paper's example query, answered through the *stale* sparse index:
  // SELECT qty FROM inventory WHERE store='Paris' AND prod<'rug'.
  KeyBounds bounds;
  bounds.lo = {Value("Paris")};
  bounds.hi = {Value("Paris"), Value("rug")};
  auto scan = inventory.Scan({0, 1, 3}, &bounds);
  auto rows = CollectRows(scan.get());
  std::printf("Range query store='Paris', prod<'rug' (stale sparse index):\n");
  for (const auto& t : *rows) {
    if (t[0].AsString() == "Paris" && t[1].AsString() < "rug") {
      std::printf("  qty = %lld  (tuple %s)\n",
                  static_cast<long long>(t[2].AsInt64()),
                  TupleToString(t).c_str());
    }
  }
  return 0;
}

// Concurrent-workload stress: many shell-level queries (admitted
// through a WorkloadManager, scanning/aggregating/sorting one table,
// some riding shared scans, some deliberately over their memory budget)
// degrade gracefully — every query either completes, fails fast with
// ResourceExhausted, or is rejected at the bounded admission queue, and
// the accounting returns to zero afterwards. Plus targeted regressions:
// strict FIFO admission order, fast rejection on a full queue, and the
// ThreadPool's per-token fairness lanes (a deep backlog under one query
// token cannot starve a task submitted under another).
//
// Knobs (environment):
//   PDT_WORKLOAD_QUERIES  total queries in the stress run (default 1000;
//                         the TSan CI stage runs a smaller batch)
//   PDT_WORKLOAD_SEED     base seed (default 20260808)
//
// Decisions all derive from (seed, query index), so a failure reproduces
// deterministically up to thread interleaving.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/table.h"
#include "exec/pipeline.h"
#include "exec/shared_scan.h"
#include "exec/workload.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace pdtstore {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

std::shared_ptr<const Schema> StressSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::unique_ptr<Table> MakeStressTable(int64_t rows) {
  auto table =
      std::make_unique<Table>("stress", StressSchema(), TableOptions{});
  std::vector<Tuple> init;
  init.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) init.push_back({i, i % 97});
  EXPECT_TRUE(table->Load(init).ok());
  return table;
}

// ---------------------------------------------------------------------
// Admission order and bounded queueing.
// ---------------------------------------------------------------------

TEST(WorkloadAdmission, StrictFifoOrder) {
  WorkloadOptions opts;
  opts.max_concurrent = 1;
  opts.max_queued = 64;
  WorkloadManager mgr(opts);

  auto gate = *mgr.Admit("gate");  // occupy the single slot
  std::mutex mu;
  std::vector<int> order;
  std::vector<std::thread> arrivals;
  constexpr int kArrivals = 12;
  for (int i = 0; i < kArrivals; ++i) {
    arrivals.emplace_back([&, i] {
      auto t = mgr.Admit("q" + std::to_string(i));
      ASSERT_TRUE(t.ok()) << t.status().ToString();
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      // Ticket dies here -> next waiter admitted.
    });
    // Serialize arrival order: wait until this arrival is queued before
    // launching the next, so FIFO has a defined expectation.
    while (mgr.GetStats().queued != static_cast<uint64_t>(i + 1)) {
      std::this_thread::yield();
    }
  }
  gate.reset();  // release the slot; the queue drains one by one
  for (auto& t : arrivals) t.join();

  std::vector<int> expect(kArrivals);
  for (int i = 0; i < kArrivals; ++i) expect[i] = i;
  EXPECT_EQ(order, expect) << "admission order is not FIFO";

  WorkloadStats s = mgr.GetStats();
  EXPECT_EQ(s.admitted, static_cast<uint64_t>(kArrivals) + 1);
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.active, 0u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.queued_peak, static_cast<uint64_t>(kArrivals));
}

TEST(WorkloadAdmission, FullQueueRejectsImmediately) {
  WorkloadOptions opts;
  opts.max_concurrent = 1;
  opts.max_queued = 2;
  WorkloadManager mgr(opts);

  auto gate = *mgr.Admit("gate");
  std::vector<std::thread> waiters;
  for (int i = 0; i < 2; ++i) {
    waiters.emplace_back([&] {
      auto t = mgr.Admit("waiter");
      EXPECT_TRUE(t.ok());
    });
  }
  while (mgr.GetStats().queued != 2) std::this_thread::yield();

  // Queue is full: the next arrival must fail fast, not block.
  auto rejected = mgr.Admit("overflow");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(mgr.GetStats().rejected, 1u);

  gate.reset();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(mgr.GetStats().active, 0u);
}

// ---------------------------------------------------------------------
// ThreadPool fairness: a 200-task backlog under token A cannot starve a
// task submitted under token B — lanes rotate, so B's task runs within
// a rotation, not after A's whole backlog.
// ---------------------------------------------------------------------

TEST(WorkloadFairness, TokenBacklogCannotStarveOtherQueries) {
  ThreadPool pool(1);  // single worker: scheduling order is observable
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<int> a_done{0};
  std::atomic<int> b_saw{-1};

  // Block the worker so the backlog builds deterministically.
  pool.Submit(1, [released] { released.wait(); });
  for (int i = 0; i < 200; ++i) {
    pool.Submit(1, [&] { a_done.fetch_add(1); });
  }
  // B arrives last, on its own lane. Under single-queue FIFO it would
  // wait behind all 200 of A's tasks.
  pool.Submit(2, [&] { b_saw.store(a_done.load()); });

  release.set_value();
  pool.WaitIdle();
  ASSERT_GE(b_saw.load(), 0) << "token-2 task never ran";
  EXPECT_LT(b_saw.load(), 8)
      << "token-2 task waited behind token-1's backlog (starvation)";
  EXPECT_EQ(a_done.load(), 200);
}

// ---------------------------------------------------------------------
// The headline stress: PDT_WORKLOAD_QUERIES shell-level queries from 16
// driver threads through one WorkloadManager (4 run slots, bounded
// queue, tight per-query memory caps). Every 7th query is a memory hog
// whose sort materialization exceeds its budget — it must fail fast
// with ResourceExhausted while everything else completes. Half the
// scans opt into shared-scan mode, so concurrent riders merge streams
// under stress. Afterwards: all accounting back to zero.
// ---------------------------------------------------------------------

TEST(WorkloadStress, ConcurrentQueriesDegradeGracefully) {
  const uint64_t total = EnvOr("PDT_WORKLOAD_QUERIES", 1000);
  const uint64_t seed = EnvOr("PDT_WORKLOAD_SEED", 20260808);
  constexpr int64_t kRows = 6000;
  auto table = MakeStressTable(kRows);

  WorkloadOptions opts;
  opts.max_concurrent = 4;
  opts.max_queued = 8;
  opts.process_memory_cap = 2 << 20;
  opts.per_query_memory_cap = 64 << 10;  // a full-table sort exceeds this
  WorkloadManager mgr(opts);

  std::atomic<uint64_t> ok{0}, exhausted{0}, rejected{0};
  std::atomic<uint64_t> next_query{0};
  std::mutex err_mu;
  std::vector<std::string> unexpected;

  auto run_one = [&](uint64_t qid) {
    auto ticket = mgr.Admit("q" + std::to_string(qid));
    if (!ticket.ok()) {
      if (ticket.status().code() == StatusCode::kResourceExhausted) {
        rejected.fetch_add(1);
        return;
      }
      std::lock_guard<std::mutex> lock(err_mu);
      unexpected.push_back(ticket.status().ToString());
      return;
    }
    ScopedQuery scope(*ticket);
    Random rng(seed ^ (qid * 0x9E3779B97F4A7C15ULL + 1));
    ScanOptions so;
    so.num_threads = 1 + static_cast<int>(rng.Uniform(4));
    so.ordered = false;
    so.shared_scan = rng.Bernoulli(0.5);

    Status st;
    if (qid % 7 == 0) {
      // Memory hog: full-table sort, ~140 KiB of charges against a
      // 64 KiB cap -> must degrade into ResourceExhausted, not OOM.
      Pipeline pipe(table->PlanMorsels({0, 1}, nullptr, so));
      auto out = std::move(pipe).IntoSortBuild({{0, false}});
      st = CollectRows(out.get()).status();
    } else {
      switch (rng.Uniform(3)) {
        case 0: {  // grouped count
          Pipeline pipe(table->PlanMorsels({0, 1}, nullptr, so));
          auto out =
              std::move(pipe).Aggregate({1}, {{AggKind::kCount, 0},
                                              {AggKind::kSum, 0}});
          st = CollectRows(out.get()).status();
          break;
        }
        case 1: {  // filtered sort, well within budget
          const int64_t m = 8 + static_cast<int64_t>(rng.Uniform(8));
          const int64_t r = static_cast<int64_t>(rng.Uniform(m));
          Pipeline pipe(table->PlanMorsels({0, 1}, nullptr, so));
          pipe.Filter([m, r](const Batch& b, KeepBitmap* keep) {
            const int64_t* v = b.column(1).ints_data();
            keep->FillFrom([&](size_t i) { return v[i] % m == r; });
          });
          auto out = std::move(pipe).IntoSortBuild({{1, false}, {0, true}});
          st = CollectRows(out.get()).status();
          break;
        }
        default: {  // plain unordered exchange drain
          Pipeline pipe(table->PlanMorsels({0, 1}, nullptr, so));
          auto out = std::move(pipe).Exchange();
          st = CollectRows(out.get()).status();
          break;
        }
      }
    }
    if (st.ok()) {
      ok.fetch_add(1);
    } else if (st.code() == StatusCode::kResourceExhausted) {
      exhausted.fetch_add(1);
    } else {
      std::lock_guard<std::mutex> lock(err_mu);
      unexpected.push_back("qid " + std::to_string(qid) + ": " +
                           st.ToString());
    }
  };

  constexpr int kDrivers = 16;
  std::vector<std::thread> drivers;
  for (int d = 0; d < kDrivers; ++d) {
    drivers.emplace_back([&] {
      while (true) {
        const uint64_t qid = next_query.fetch_add(1);
        if (qid >= total) return;
        run_one(qid);
      }
    });
  }
  for (auto& t : drivers) t.join();

  EXPECT_TRUE(unexpected.empty())
      << unexpected.size() << " queries failed with unexpected errors, "
      << "first: " << unexpected.front();
  EXPECT_EQ(ok.load() + exhausted.load() + rejected.load(), total);
  EXPECT_GT(ok.load(), 0u);
  EXPECT_GT(exhausted.load(), 0u) << "no hog hit its memory budget";

  WorkloadStats s = mgr.GetStats();
  EXPECT_EQ(s.admitted, ok.load() + exhausted.load());
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.rejected, rejected.load());
  EXPECT_EQ(s.active, 0u);
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.memory_used, 0u) << "query memory leaked into the pool";
  EXPECT_LE(s.memory_peak, opts.process_memory_cap)
      << "the shared cap was overshot";
}

}  // namespace
}  // namespace pdtstore

// TPC-H refresh streams (RF1/RF2): each stream inserts new orders (with
// their lineitems, using orderkeys from the holes in the key space) and
// deletes existing orders — each touching roughly 0.1% of orders and
// lineitem, scattered across the clustered tables, exactly the update
// load of the paper's Fig. 19 experiments.
#ifndef PDTSTORE_TPCH_UPDATE_STREAM_H_
#define PDTSTORE_TPCH_UPDATE_STREAM_H_

#include <string>
#include <vector>

#include "tpch/tpch_gen.h"
#include "txn/multi_txn.h"
#include "txn/txn_manager.h"

namespace pdtstore {
namespace tpch {

/// One refresh stream: inserts and deletes (deletes carry the regenerated
/// order so both tables' sort keys can be addressed).
struct UpdateStream {
  std::vector<GeneratedOrder> inserts;
  std::vector<GeneratedOrder> deletes;
};

/// Builds `num_streams` refresh streams, each covering `fraction` of the
/// order count (TPC-H uses 2 streams x 0.1%). Insert keys come from the
/// generator's holes; delete keys sample existing orders. Streams are
/// disjoint; when the requested delete load exceeds the order count (so
/// disjointness is impossible) this returns InvalidArgument instead of
/// silently reusing keys.
StatusOr<std::vector<UpdateStream>> MakeUpdateStreams(
    const GenOptions& gen, int num_streams, double fraction);

/// Applies one stream to the tables (inserts into orders+lineitem, then
/// deletes). Works with either delta backend through the Table facade.
Status ApplyUpdateStream(const UpdateStream& stream, TpchTables* tables);

/// Applies one stream through the transactional write path, grouping
/// `orders_per_txn` refresh orders per commit on each table's manager.
/// Several streams on distinct threads then exercise the lock-free delta
/// publication + batched fold path concurrently (the paper's Fig. 19
/// update load as an HTAP writer). Atomicity is per table: the orders
/// and lineitem updates of a group commit as two transactions (for the
/// cross-table refresh the paper's RF1/RF2 demand, use
/// ApplyUpdateStreamMultiTxn). On any error both in-flight transactions
/// are resolved (awaited or aborted) before the error propagates.
Status ApplyUpdateStreamTxn(const UpdateStream& stream, TxnManager* orders,
                            TxnManager* lineitem, size_t orders_per_txn = 8);

/// A slice of one stream that commits as one transaction: orders
/// [begin, end) of either the insert or the delete list.
struct RefreshGroup {
  size_t begin = 0;
  size_t end = 0;
  bool inserts = true;
};

/// Splits a stream into refresh groups of `orders_per_txn` orders each
/// (inserts first, then deletes — the RF1/RF2 order).
std::vector<RefreshGroup> PlanRefreshGroups(const UpdateStream& stream,
                                            size_t orders_per_txn);

struct MultiTxnApplyOptions {
  size_t orders_per_txn = 8;
  /// A refresh group that loses a write-write conflict is retried from a
  /// fresh snapshot up to this many times before the conflict surfaces.
  int max_conflict_retries = 8;
  std::string orders_table = "orders";
  std::string lineitem_table = "lineitem";
};

struct MultiTxnApplyStats {
  uint64_t groups_committed = 0;
  uint64_t conflict_retries = 0;
  uint64_t rows_inserted = 0;  ///< orders + lineitem rows
  uint64_t rows_deleted = 0;
};

/// Applies one refresh group as ONE transaction touching orders *and*
/// lineitem — all-or-nothing under conflict, exactly the atomicity the
/// TPC-H refresh functions demand. Deletes whose order is already gone
/// are skipped (their lineitems too). Conflicts are retried from a
/// fresh snapshot per `opts.max_conflict_retries`.
Status ApplyRefreshGroupMultiTxn(const UpdateStream& stream,
                                 const RefreshGroup& group,
                                 MultiTxnManager* mgr,
                                 const MultiTxnApplyOptions& opts = {},
                                 MultiTxnApplyStats* stats = nullptr);

/// Applies a whole stream as a sequence of cross-table refresh groups
/// (PlanRefreshGroups + ApplyRefreshGroupMultiTxn).
Status ApplyUpdateStreamMultiTxn(const UpdateStream& stream,
                                 MultiTxnManager* mgr,
                                 const MultiTxnApplyOptions& opts = {},
                                 MultiTxnApplyStats* stats = nullptr);

}  // namespace tpch
}  // namespace pdtstore

#endif  // PDTSTORE_TPCH_UPDATE_STREAM_H_

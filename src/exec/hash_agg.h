// HashAggNode: grouped aggregation (SUM / COUNT / MIN / MAX / AVG),
// materialized on first pull. Group keys are hashed with one bulk
// HashColumn pass per key column into an open-addressing table keyed by
// the combined 64-bit hash (verify-on-collision via typed CompareAt
// against the materialized distinct-key columns) — no per-row key
// serialization or allocation.
//
// The aggregation core lives in AggregationState so the parallel
// pipeline (exec/pipeline.h) can run one instance per worker as a
// thread-local pre-aggregation table and merge them at finalize; the
// serial HashAggNode drives a single instance, byte-identical to the
// pre-pipeline behavior.
#ifndef PDTSTORE_EXEC_HASH_AGG_H_
#define PDTSTORE_EXEC_HASH_AGG_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// Aggregate function kinds.
enum class AggKind { kSum, kCount, kMin, kMax, kAvg };

/// One aggregate: fn over input column `input_idx` (ignored for COUNT).
struct AggSpec {
  AggKind kind;
  size_t input_idx = 0;
};

/// The grouped-aggregation core: an open-addressing table keyed by the
/// combined key hash with typed bulk accumulate passes. Not thread-safe;
/// parallel aggregation gives each worker its own instance and merges
/// them (MergeFrom) under the runner's serialization.
class AggregationState {
 public:
  AggregationState(std::vector<size_t> group_by, std::vector<AggSpec> aggs);

  /// Folds one input batch into the table (groups created in order of
  /// first appearance).
  Status Absorb(const Batch& in);

  /// Partial-aggregation merge: folds `other`'s groups into this table
  /// (SUM/AVG/COUNT add, MIN/MAX fold; AVG merges exactly because sum
  /// and count are both carried).
  Status MergeFrom(const AggregationState& other);

  size_t num_groups() const { return group_hashes_.size(); }

  /// Assembles the result batch — the group-by key columns (first-
  /// appearance order) followed by one column per aggregate (COUNT ->
  /// int64, others -> double); a global aggregation over zero rows
  /// yields a single all-zero row. Leaves this state empty.
  Batch TakeResult();

 private:
  // Maps each row of `in` to its group id (creating groups), using the
  // precomputed combined key hashes.
  void AssignGroups(const Batch& in, const uint64_t* hashes,
                    uint32_t* gids);
  // Grows the open-addressing table (one rehash) so it can hold
  // `min_groups` groups under the 50% load cap.
  void GrowTable(size_t min_groups);

  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  bool key_cols_init_ = false;
  std::vector<ColumnVector> key_cols_;   // one value per group
  std::vector<uint64_t> group_hashes_;   // combined hash per group
  std::vector<uint32_t> slots_;          // open addressing: group id + 1
  size_t slot_mask_ = 0;
  std::vector<int64_t> counts_;          // per group
  std::vector<std::vector<double>> acc_;  // per agg, per group
  // Scratch reused across Absorb calls.
  std::vector<uint64_t> hashes_;
  std::vector<uint32_t> gids_;
  // New groups the previous batch contributed — the carried estimate that
  // pre-sizes the table before each batch, so high-cardinality inputs do
  // one predicted rehash per batch at most instead of repeated
  // mid-AssignGroups doubling (SIZE_MAX until a batch has been seen: the
  // first batch pre-sizes for the worst case, every row a new group).
  size_t prev_batch_new_groups_ = static_cast<size_t>(-1);
};

/// Grouped aggregation. Output columns: the group-by columns (in the
/// given order) followed by one double/int64 column per aggregate
/// (COUNT -> int64, others -> double). Groups are emitted in order of
/// first appearance.
class HashAggNode : public BatchSource {
 public:
  HashAggNode(std::unique_ptr<BatchSource> input,
              std::vector<size_t> group_by, std::vector<AggSpec> aggs)
      : input_(std::move(input)),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  Status BuildResult();

  std::unique_ptr<BatchSource> input_;
  std::vector<size_t> group_by_;
  std::vector<AggSpec> aggs_;
  bool built_ = false;
  std::unique_ptr<BatchSource> emitter_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_HASH_AGG_H_

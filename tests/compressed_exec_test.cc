// Targeted tests for the compressed-execution machinery: zero-copy
// borrowed spans (lifetime, copy-on-write), dictionary code columns
// (breaker re-encoding and decay), encoded predicate kernels (RLE
// run-at-a-time, dict verdict tables), buffer-pool stats atomicity, and
// zone-map chunk pruning (including the PDT-entry and trailing-insert
// edge cases the pruner must respect).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "db/table.h"
#include "exec/filter.h"
#include "storage/buffer_pool.h"
#include "storage/column_store.h"
#include "txn/txn_manager.h"

namespace pdtstore {
namespace {

std::shared_ptr<const Schema> TestSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64},
                         {"v", TypeId::kInt64},
                         {"s", TypeId::kString}},
                        {0});
  return std::make_shared<const Schema>(std::move(*s));
}

// n rows: k = i, v = i / 8 (long runs), s cycles over 4 values (small
// dictionary). Chunked small so multi-chunk behavior shows up at tiny n.
std::unique_ptr<Table> MakeTable(int64_t n, bool encoded_exec = true,
                                 std::vector<Encoding> forced = {}) {
  TableOptions opts;
  opts.store.chunk_rows = 64;
  opts.store.encoded_exec = encoded_exec;
  opts.store.forced_encodings = std::move(forced);
  auto t = std::make_unique<Table>("t", TestSchema(), opts);
  std::vector<Tuple> rows;
  rows.reserve(n);
  const char* names[] = {"alpha", "beta", "gamma", "delta"};
  for (int64_t i = 0; i < n; ++i) {
    rows.push_back({i, i / 8, std::string(names[i % 4])});
  }
  EXPECT_TRUE(t->Load(rows).ok());
  return t;
}

std::vector<Tuple> Collect(BatchSource* src) {
  auto rows = CollectRows(src);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? std::move(*rows) : std::vector<Tuple>{};
}

// ---------------------------------------------------------------------
// Borrowed spans.
// ---------------------------------------------------------------------

// A batch pulled from a scan stays readable after the scan source is
// destroyed and the pool evicts everything: the borrow's shared_ptr pins
// the decoded chunk.
TEST(CompressedExec, BorrowedBatchOutlivesScanAndEviction) {
  auto t = MakeTable(256);
  Batch b;
  {
    auto scan = t->Scan({0, 1, 2});
    auto more = scan->Next(&b, 64);
    ASSERT_TRUE(more.ok() && *more);
  }                              // scan source gone
  t->buffer_pool()->EvictAll();  // pool reference gone too
  ASSERT_EQ(b.num_rows(), 64u);
  EXPECT_TRUE(b.column(0).is_borrowed());
  const int64_t* k = b.column(0).ints_data();
  const char* names[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < b.num_rows(); ++i) {
    EXPECT_EQ(k[i], static_cast<int64_t>(i));
    EXPECT_EQ(b.column(2).StringAt(i), names[i % 4]);
  }
}

// Mutating a borrowed column detaches a private copy; the pool-owned
// chunk the scan borrowed from is not scribbled on.
TEST(CompressedExec, CopyOnWriteDetachProtectsChunkStorage) {
  auto t = MakeTable(128);
  auto scan = t->Scan({0, 1, 2});
  Batch b;
  ASSERT_TRUE(scan->Next(&b, 64).ok());
  ASSERT_TRUE(b.column(0).is_borrowed());

  b.column(0).ints()[0] = -999;  // copy-on-write detach
  EXPECT_FALSE(b.column(0).is_borrowed());
  EXPECT_EQ(b.column(0).ints_data()[0], -999);

  // A fresh scan still sees the original values.
  auto scan2 = t->Scan({0});
  Batch b2;
  ASSERT_TRUE(scan2->Next(&b2, 64).ok());
  EXPECT_EQ(b2.column(0).ints_data()[0], 0);
}

// ---------------------------------------------------------------------
// Dictionary columns at breakers.
// ---------------------------------------------------------------------

// AppendRange from a dictionary column into an empty string column
// adopts the dictionary (code copy); appending from a column with a
// *different* dictionary then decays to plain — values stay correct.
TEST(CompressedExec, DictAdoptionAndDecayAtBreakers) {
  auto t1 = MakeTable(64, true, {Encoding::kPlain, Encoding::kPlain,
                                 Encoding::kDict});
  TableOptions opts2;
  opts2.store.chunk_rows = 64;
  auto t2 = std::make_unique<Table>("t2", TestSchema(), opts2);
  std::vector<Tuple> rows2;
  for (int64_t i = 0; i < 64; ++i) {
    rows2.push_back({i, i, std::string(i % 2 ? "omega" : "sigma")});
  }
  ASSERT_TRUE(t2->Load(rows2).ok());

  auto c1 = t1->store().FetchChunk(2, 0);
  auto c2 = t2->store().FetchChunk(2, 0);
  ASSERT_TRUE(c1.ok() && c2.ok());
  ASSERT_TRUE((*c1)->is_dict());

  ColumnVector out(TypeId::kString);
  out.AppendRange(**c1, 0, 8);
  EXPECT_TRUE(out.is_dict());  // adopted c1's dictionary
  EXPECT_EQ(out.dict().get(), (*c1)->dict().get());

  out.AppendRange(**c2, 0, 4);  // different (or no) dict: must decay
  EXPECT_FALSE(out.is_dict());
  ASSERT_EQ(out.size(), 12u);
  EXPECT_EQ(out.StringAt(0), "alpha");
  EXPECT_EQ(out.StringAt(7), "delta");
  EXPECT_EQ(out.StringAt(8), "sigma");
  EXPECT_EQ(out.StringAt(9), "omega");
}

// Equal hashes across representations: group-by and join partitioning
// rely on the dict path producing the same per-row hash as plain.
TEST(CompressedExec, DictAndPlainHashesAgree) {
  auto enc = MakeTable(64, true, {Encoding::kPlain, Encoding::kPlain,
                                  Encoding::kDict});
  auto dec = MakeTable(64, false);
  auto c_enc = enc->store().FetchChunk(2, 0);
  auto c_dec = dec->store().FetchChunk(2, 0);
  ASSERT_TRUE(c_enc.ok() && c_dec.ok());
  ASSERT_TRUE((*c_enc)->is_dict());
  ASSERT_FALSE((*c_dec)->is_dict());
  std::vector<uint64_t> h1((*c_enc)->size(), kHashSeed);
  std::vector<uint64_t> h2((*c_dec)->size(), kHashSeed);
  (*c_enc)->HashColumn(h1.data());
  (*c_dec)->HashColumn(h2.data());
  EXPECT_EQ(h1, h2);
}

// ---------------------------------------------------------------------
// Encoded predicate kernels.
// ---------------------------------------------------------------------

// Same data stored four ways; every predicate shape must select the
// same rows, whether it runs per-row, per-run (RLE sidecar), or per
// dictionary entry.
TEST(CompressedExec, EncodedPredicatesMatchDecodedReference) {
  const int64_t n = 500;
  std::vector<std::vector<Encoding>> variants = {
      {},  // heuristics
      {Encoding::kPlain, Encoding::kRle, Encoding::kDict},
      {Encoding::kForBitPack, Encoding::kPlain, Encoding::kPlain},
  };
  auto ref_table = MakeTable(n, false);
  std::vector<std::pair<const char*, VecPredicate>> preds;
  preds.emplace_back("between", Int64Between(1, 10, 40));
  preds.emplace_back("str_eq", StringEquals(2, "gamma"));
  preds.emplace_back("str_match", StringMatch(2, [](const std::string& s) {
                       return !s.empty() && s[0] == 'd';
                     }));
  for (auto& [name, pred] : preds) {
    auto rs = std::make_unique<FilterNode>(ref_table->Scan({0, 1, 2}), pred);
    const std::vector<Tuple> want = Collect(rs.get());
    EXPECT_FALSE(want.empty()) << name;
    for (const auto& forced : variants) {
      auto t = MakeTable(n, true, forced);
      auto fs = std::make_unique<FilterNode>(t->Scan({0, 1, 2}), pred);
      EXPECT_EQ(Collect(fs.get()), want) << name;
    }
  }
}

// The RLE sidecar actually exists on forced-RLE columns (so the
// run-at-a-time kernel, not the per-row loop, is what the test above
// exercised), and run bounds reconstruct the column.
TEST(CompressedExec, RleSidecarPresentAndConsistent) {
  auto t = MakeTable(256, true,
                     {Encoding::kPlain, Encoding::kRle, Encoding::kPlain});
  auto c = t->store().FetchChunk(1, 0);
  ASSERT_TRUE(c.ok());
  const RleRuns* runs = (*c)->rle_runs();
  ASSERT_NE(runs, nullptr);
  const int64_t* v = (*c)->ints_data();
  uint32_t begin = 0;
  for (uint32_t end : runs->ends) {
    ASSERT_LT(begin, end);
    for (uint32_t i = begin; i < end; ++i) EXPECT_EQ(v[i], v[begin]);
    if (end < (*c)->size()) EXPECT_NE(v[end], v[begin]);
    begin = end;
  }
  EXPECT_EQ(begin, (*c)->size());
}

// ---------------------------------------------------------------------
// BufferPool stats.
// ---------------------------------------------------------------------

// Concurrent fetches with a concurrent stats() poller: counters must
// add up exactly afterwards (they are relaxed atomics, not a racy
// read-modify-write under no lock).
TEST(CompressedExec, PoolStatsAreExactUnderConcurrency) {
  auto t = MakeTable(512);
  BufferPool* pool = t->buffer_pool();
  pool->EvictAll();
  pool->ResetStats();
  const size_t chunks = t->store().num_chunks();
  const int kThreads = 8, kRounds = 50;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t ci = 0; ci < chunks; ++ci) {
          auto c = t->store().FetchChunk(0, ci);
          ASSERT_TRUE(c.ok());
        }
      }
    });
  }
  std::thread poller([&] {
    for (int i = 0; i < 1000; ++i) (void)pool->stats();
  });
  for (auto& w : workers) w.join();
  poller.join();
  const IoStats s = pool->stats();
  EXPECT_EQ(s.chunks_read + s.hits,
            static_cast<uint64_t>(kThreads) * kRounds * chunks);
  EXPECT_GE(s.chunks_read, chunks);  // every chunk missed at least once
  EXPECT_GT(s.bytes_read, 0u);
}

// ---------------------------------------------------------------------
// Zone-map pruning.
// ---------------------------------------------------------------------

std::vector<Tuple> ScanWith(const Table& t, std::vector<ZoneFilter> zf,
                            int64_t lo, int64_t hi, int threads) {
  ScanOptions so;
  so.num_threads = threads;
  so.zone_filters = std::move(zf);
  auto src = std::make_unique<FilterNode>(t.Scan({0, 1, 2}, nullptr, so),
                                          Int64Between(0, lo, hi));
  return Collect(src.get());
}

// A narrow key-range hint skips the chunks outside it (visible in
// IoStats) without changing the result, serial and parallel.
TEST(CompressedExec, ZonePruningSkipsChunksWithoutChangingResults) {
  auto t = MakeTable(512);  // 8 chunks of 64 keys
  const int64_t lo = 200, hi = 260;
  const std::vector<Tuple> want = ScanWith(*t, {}, lo, hi, 1);
  ASSERT_EQ(want.size(), static_cast<size_t>(hi - lo + 1));
  for (int threads : {1, 4}) {
    t->buffer_pool()->EvictAll();
    t->buffer_pool()->ResetStats();
    const std::vector<Tuple> got =
        ScanWith(*t, {{0, Value(lo), Value(hi)}}, lo, hi, threads);
    EXPECT_EQ(got, want) << threads << " threads";
    const IoStats s = t->buffer_pool()->stats();
    EXPECT_GT(s.chunks_skipped, 0u) << threads << " threads";
    EXPECT_GT(s.bytes_skipped, 0u) << threads << " threads";
  }
}

// PDT entries inside otherwise-dead chunks block pruning (the merged
// image shifts positions, so a pruned range must be entry-free); the
// hinted scan must agree with the unhinted one under inserts, deletes
// and modifies both inside and outside the hinted key range.
TEST(CompressedExec, ZonePruningRespectsDeltaEntries) {
  auto t = MakeTable(512);
  // Entries in chunks the zone maps would otherwise prune:
  ASSERT_TRUE(t->Insert({-5, 77, std::string("new")}).ok());
  ASSERT_TRUE(t->ModifyByKey({Value(int64_t{50})}, 1, Value(int64_t{9})).ok());
  ASSERT_TRUE(t->DeleteByKey({Value(int64_t{480})}).ok());
  // And churn inside the hinted range itself:
  ASSERT_TRUE(t->DeleteByKey({Value(int64_t{310})}).ok());
  ASSERT_TRUE(
      t->ModifyByKey({Value(int64_t{320})}, 2, Value(std::string("mod"))).ok());
  const int64_t lo = 300, hi = 360;
  const std::vector<Tuple> want = ScanWith(*t, {}, lo, hi, 1);
  ASSERT_EQ(want.size(), static_cast<size_t>(hi - lo));  // one key deleted
  for (int threads : {1, 4}) {
    const std::vector<Tuple> got =
        ScanWith(*t, {{0, Value(lo), Value(hi)}}, lo, hi, threads);
    EXPECT_EQ(got, want) << threads << " threads";
  }
}

// A hint that excludes every chunk on a delta-free table: nothing is
// fetched, nothing is returned — and the scan still terminates cleanly
// through the sentinel morsel, serial and parallel.
TEST(CompressedExec, AllPrunedScanReadsNothing) {
  auto t = MakeTable(512);
  const int64_t lo = 9000, hi = 11000;
  for (int threads : {1, 4}) {
    t->buffer_pool()->EvictAll();
    t->buffer_pool()->ResetStats();
    const std::vector<Tuple> got =
        ScanWith(*t, {{0, Value(lo), Value(hi)}}, lo, hi, threads);
    EXPECT_TRUE(got.empty()) << threads << " threads";
    const IoStats s = t->buffer_pool()->stats();
    EXPECT_EQ(s.chunks_read, 0u) << threads << " threads";
    EXPECT_EQ(s.chunks_skipped, 8u * 3u) << threads << " threads";
  }
}

// All stable chunks dead + a trailing insert past the stable key range:
// the insert must still be emitted. The insert's PDT entry parks at the
// scan end, which deliberately blocks pruning of the *final* chunk
// (trailing emission is anchored there), so exactly that chunk's
// columns are fetched and everything before it is skipped.
TEST(CompressedExec, AllPrunedScanStillEmitsTrailingInserts) {
  auto t = MakeTable(512);
  ASSERT_TRUE(t->Insert({10000, 1, std::string("tail")}).ok());
  const int64_t lo = 9000, hi = 11000;
  for (int threads : {1, 4}) {
    t->buffer_pool()->EvictAll();
    t->buffer_pool()->ResetStats();
    const std::vector<Tuple> got =
        ScanWith(*t, {{0, Value(lo), Value(hi)}}, lo, hi, threads);
    ASSERT_EQ(got.size(), 1u) << threads << " threads";
    EXPECT_EQ(got[0][0], Value(static_cast<int64_t>(10000)));
    const IoStats s = t->buffer_pool()->stats();
    EXPECT_EQ(s.chunks_read, 3u) << threads << " threads";   // final chunk
    EXPECT_EQ(s.chunks_skipped, 7u * 3u) << threads << " threads";
  }
}

// Multi-layer stack over a pruned mid-table gap: each PdtMergeSource
// must end its output batch at an input RID discontinuity, or the next
// layer up never sees the gap — its positional cursor drifts low by the
// gap width and its trailing inserts are dropped (regression: a batch
// once spanned the gap, hiding it from the layer above).
TEST(CompressedExec, LayeredScanPropagatesPrunedGapsAcrossLayers) {
  auto t = MakeTable(512);
  // Bottom layer (the table's own PDT): an entry that keeps chunk 0
  // alive, so the kept ranges have a hole between it and the final
  // chunk once the middle chunks are pruned.
  ASSERT_TRUE(t->Insert({-5, 77, std::string("head")}).ok());
  // Top layer (open transaction): trailing inserts past the stable key
  // range, inside the hinted window.
  TxnManager mgr(t.get());
  auto txn = mgr.Begin();
  ASSERT_TRUE(txn->Insert({10000, 1, std::string("tail-a")}).ok());
  ASSERT_TRUE(txn->Insert({10050, 2, std::string("tail-b")}).ok());
  const int64_t lo = 9000, hi = 11000;
  auto scan = [&](std::vector<ZoneFilter> zf, int threads) {
    ScanOptions so;
    so.num_threads = threads;
    so.zone_filters = std::move(zf);
    auto src = std::make_unique<FilterNode>(txn->Scan({0, 1, 2}, nullptr, so),
                                            Int64Between(0, lo, hi));
    return Collect(src.get());
  };
  const std::vector<Tuple> want = scan({}, 1);
  ASSERT_EQ(want.size(), 2u);
  for (int threads : {1, 4}) {
    const std::vector<Tuple> got =
        scan({{0, Value(lo), Value(hi)}}, threads);
    EXPECT_EQ(got, want) << threads << " threads";
  }
}

}  // namespace
}  // namespace pdtstore

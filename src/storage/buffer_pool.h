// Buffer pool over decoded chunks, with I/O accounting. A miss models a
// disk read of the encoded payload: it is counted in IoStats and charged
// at a configurable bandwidth so benches can report simulated "cold" I/O
// time, reproducing the cold/hot distinction of the paper's Fig. 19.
#ifndef PDTSTORE_STORAGE_BUFFER_POOL_H_
#define PDTSTORE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "columnstore/column_vector.h"
#include "storage/chunk.h"

namespace pdtstore {

/// Counters of simulated disk traffic since the last Reset.
struct IoStats {
  uint64_t bytes_read = 0;   ///< encoded bytes pulled from "disk"
  uint64_t chunks_read = 0;  ///< number of chunk reads (seeks)
  uint64_t hits = 0;         ///< pool hits (no I/O)

  void Reset() { *this = IoStats{}; }
};

/// LRU cache of decoded chunks keyed by an opaque 64-bit id. Fetch and
/// eviction are internally synchronized so the morsel-driven parallel
/// scan's workers can pull chunks concurrently (one lock acquisition per
/// chunk, i.e. per tens of thousands of rows — not a hot path). The
/// returned shared_ptrs keep decoded chunks alive across evictions.
/// stats() reads are unsynchronized: read them only while no scan runs.
class BufferPool {
 public:
  /// `capacity_bytes` bounds the decoded footprint; 0 = unbounded.
  explicit BufferPool(size_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the decoded values of `chunk`, from cache or by "reading"
  /// (miss: counts chunk.DiskBytes() into the I/O stats and decodes).
  StatusOr<std::shared_ptr<const ColumnVector>> Fetch(uint64_t key,
                                                      const Chunk& chunk);

  /// Drops all cached chunks: the next scan is fully "cold".
  void EvictAll();

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  size_t cached_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cached_bytes_;
  }
  size_t cached_chunks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::shared_ptr<const ColumnVector> data;
    size_t bytes;
    std::list<uint64_t>::iterator lru_it;
  };

  void MaybeEvict();  // callers hold mu_

  mutable std::mutex mu_;
  size_t capacity_bytes_;
  size_t cached_bytes_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;
  std::list<uint64_t> lru_;  // front = most recent
  IoStats stats_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_STORAGE_BUFFER_POOL_H_

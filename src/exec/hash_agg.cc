#include "exec/hash_agg.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "exec/operator.h"

namespace pdtstore {

namespace {

// Serializes a group key into a flat byte string (hashable map key).
void EncodeGroupKey(const Batch& b, size_t row,
                    const std::vector<size_t>& cols, std::string* out) {
  out->clear();
  for (size_t c : cols) {
    const ColumnVector& col = b.column(c);
    switch (col.type()) {
      case TypeId::kInt64: {
        int64_t v = col.ints()[row];
        out->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      case TypeId::kDouble: {
        double v = col.doubles()[row];
        out->append(reinterpret_cast<const char*>(&v), 8);
        break;
      }
      case TypeId::kString: {
        const std::string& s = col.strings()[row];
        uint32_t len = static_cast<uint32_t>(s.size());
        out->append(reinterpret_cast<const char*>(&len), 4);
        out->append(s);
        break;
      }
    }
  }
}

// Numeric view of a cell (int64 promoted to double).
double NumericAt(const ColumnVector& col, size_t row) {
  return col.type() == TypeId::kInt64
             ? static_cast<double>(col.ints()[row])
             : col.doubles()[row];
}

struct GroupState {
  size_t first_row;  // index into key material
  std::vector<double> sums;
  std::vector<double> mins;
  std::vector<double> maxs;
  int64_t count = 0;
};

}  // namespace

Status HashAggNode::BuildResult() {
  std::unordered_map<std::string, GroupState> groups;
  // Materialized copies of the group-key columns (one value per group).
  std::vector<ColumnVector> key_cols;
  bool key_cols_init = false;

  Batch in;
  std::string key;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&in, kDefaultBatchSize));
    if (!more) break;
    if (!key_cols_init) {
      for (size_t c : group_by_) {
        key_cols.emplace_back(in.column(c).type());
      }
      key_cols_init = true;
    }
    for (size_t row = 0; row < in.num_rows(); ++row) {
      EncodeGroupKey(in, row, group_by_, &key);
      auto [it, inserted] = groups.try_emplace(key);
      GroupState& g = it->second;
      if (inserted) {
        g.first_row = key_cols.empty() ? 0 : key_cols[0].size();
        for (size_t c = 0; c < group_by_.size(); ++c) {
          key_cols[c].AppendFrom(in.column(group_by_[c]), row);
        }
        g.sums.assign(aggs_.size(), 0.0);
        g.mins.assign(aggs_.size(), std::numeric_limits<double>::infinity());
        g.maxs.assign(aggs_.size(),
                      -std::numeric_limits<double>::infinity());
      }
      ++g.count;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].kind == AggKind::kCount) continue;
        double v = NumericAt(in.column(aggs_[a].input_idx), row);
        g.sums[a] += v;
        g.mins[a] = std::min(g.mins[a], v);
        g.maxs[a] = std::max(g.maxs[a], v);
      }
    }
  }

  // Assemble the result batch: key columns then aggregates.
  result_ = Batch();
  std::vector<ColumnId> ids;
  for (size_t c = 0; c < group_by_.size(); ++c) {
    ids.push_back(static_cast<ColumnId>(c));
    result_.columns().push_back(key_cols.empty() ? ColumnVector()
                                                 : key_cols[c]);
  }
  std::vector<ColumnVector> agg_cols;
  for (const AggSpec& a : aggs_) {
    agg_cols.emplace_back(a.kind == AggKind::kCount ? TypeId::kInt64
                                                    : TypeId::kDouble);
  }
  // Emit groups ordered by first appearance (stable across runs).
  std::vector<const GroupState*> ordered(groups.size());
  {
    size_t i = 0;
    std::vector<std::pair<size_t, const GroupState*>> tmp;
    tmp.reserve(groups.size());
    for (const auto& [k, g] : groups) tmp.emplace_back(g.first_row, &g);
    std::sort(tmp.begin(), tmp.end());
    for (const auto& [pos, g] : tmp) ordered[i++] = g;
  }
  // Key columns are already in first-appearance order only if group_by_
  // is non-empty; reorder them to match `ordered`.
  if (!group_by_.empty() && key_cols_init) {
    std::vector<ColumnVector> reordered;
    for (size_t c = 0; c < group_by_.size(); ++c) {
      ColumnVector col(key_cols[c].type());
      for (const GroupState* g : ordered) {
        col.AppendFrom(key_cols[c], g->first_row);
      }
      reordered.push_back(std::move(col));
    }
    for (size_t c = 0; c < group_by_.size(); ++c) {
      result_.column(c) = std::move(reordered[c]);
    }
  }
  for (const GroupState* g : ordered) {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      switch (aggs_[a].kind) {
        case AggKind::kSum:
          agg_cols[a].doubles().push_back(g->sums[a]);
          break;
        case AggKind::kCount:
          agg_cols[a].ints().push_back(g->count);
          break;
        case AggKind::kMin:
          agg_cols[a].doubles().push_back(g->mins[a]);
          break;
        case AggKind::kMax:
          agg_cols[a].doubles().push_back(g->maxs[a]);
          break;
        case AggKind::kAvg:
          agg_cols[a].doubles().push_back(
              g->count > 0 ? g->sums[a] / static_cast<double>(g->count)
                           : 0.0);
          break;
      }
    }
  }
  // Global aggregation with zero input rows: emit a single all-zero row.
  if (groups.empty() && group_by_.empty()) {
    for (size_t a = 0; a < aggs_.size(); ++a) {
      if (aggs_[a].kind == AggKind::kCount) {
        agg_cols[a].ints().push_back(0);
      } else {
        agg_cols[a].doubles().push_back(0.0);
      }
    }
  }
  for (size_t a = 0; a < aggs_.size(); ++a) {
    ids.push_back(static_cast<ColumnId>(group_by_.size() + a));
    result_.columns().push_back(std::move(agg_cols[a]));
  }
  result_.set_column_ids(std::move(ids));
  emitter_ = std::make_unique<VectorSource>(std::move(result_));
  built_ = true;
  return Status::OK();
}

StatusOr<bool> HashAggNode::Next(Batch* out, size_t max_rows) {
  if (!built_) {
    PDT_RETURN_NOT_OK(BuildResult());
  }
  return emitter_->Next(out, max_rows);
}

}  // namespace pdtstore

#include "db/checkpoint.h"

#include <cstring>

#include "storage/encoding.h"
#include "util/crc32c.h"

namespace pdtstore {

bool ShouldCheckpoint(const Table& table, const CheckpointPolicy& policy) {
  size_t updates = 0;
  if (auto pdt = table.SharedPdt()) {  // pinned vs a racing ReplacePdt
    updates = pdt->EntryCount();
  } else if (const Vdt* vdt = table.vdt()) {
    updates = vdt->InsertCount() + vdt->DeleteCount();
  }
  if (policy.max_delta_updates > 0 && updates > policy.max_delta_updates) {
    return true;
  }
  if (policy.max_delta_bytes > 0 &&
      table.DeltaMemoryBytes() > policy.max_delta_bytes) {
    return true;
  }
  if (policy.max_delta_fraction > 0.0 && table.store().num_rows() > 0) {
    double frac = static_cast<double>(updates) /
                  static_cast<double>(table.store().num_rows());
    if (frac > policy.max_delta_fraction) return true;
  }
  return false;
}

StatusOr<bool> MaybeCheckpoint(Table* table, const CheckpointPolicy& policy) {
  if (!ShouldCheckpoint(*table, policy)) return false;
  PDT_RETURN_NOT_OK(table->Checkpoint());
  return true;
}

// ---------------------------------------------------------------------
// Durable checkpoint artifacts. Both file kinds share one shape:
//
//   [8-byte magic][u32 payload_len][u32 crc32c(payload)][payload]
//
// so a reader can reject truncation and bit rot with one check before
// parsing a single field.
// ---------------------------------------------------------------------

namespace {

constexpr char kManifestMagic[9] = "PDTMANIF";
constexpr char kImageMagic[9] = "PDTIMG01";

// Fixed-width header fields use the explicit little-endian codecs from
// storage/encoding.h, so checkpoint files mean the same bytes anywhere.
std::string FrameFile(const char magic[9], const std::string& payload) {
  std::string out(magic, 8);
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed32(&out, Crc32c(payload.data(), payload.size()));
  out.append(payload);
  return out;
}

/// Verifies magic + length + checksum and returns the payload.
StatusOr<std::string> UnframeFile(const char magic[9],
                                  const std::string& bytes,
                                  const std::string& what) {
  if (bytes.size() < 16 || std::memcmp(bytes.data(), magic, 8) != 0) {
    return Status::Corruption("bad " + what + " header");
  }
  const uint32_t len = DecodeFixed32(bytes.data() + 8);
  const uint32_t crc = DecodeFixed32(bytes.data() + 12);
  if (len != bytes.size() - 16) {
    return Status::Corruption("bad " + what + " length");
  }
  if (Crc32c(bytes.data() + 16, len) != crc) {
    return Status::Corruption(what + " checksum mismatch");
  }
  return bytes.substr(16);
}

void PutString(std::string* out, const std::string& s) {
  PutVarint64(out, s.size());
  out->append(s);
}

Status GetString(const std::string& in, size_t* pos, std::string* s) {
  uint64_t len;
  PDT_RETURN_NOT_OK(GetVarint64(in, pos, &len));
  if (len > in.size() - *pos) return Status::Corruption("truncated string");
  *s = in.substr(*pos, len);
  *pos += len;
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(FileSystem* fs, const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  PDT_ASSIGN_OR_RETURN(auto file, fs->NewWritableFile(tmp, /*truncate=*/true));
  PDT_RETURN_NOT_OK(file->Append(contents));
  PDT_RETURN_NOT_OK(file->Sync());
  PDT_RETURN_NOT_OK(file->Close());
  // The rename is the commit point: readers see the old file or the new
  // one, never a partial write. On POSIX the rename itself is not
  // crash-durable until the parent directory is fsynced — without it, a
  // power cut can keep later writes (say, the old WAL's deletion) while
  // losing this rename, leaving the old manifest pointing at files that
  // no longer exist.
  PDT_RETURN_NOT_OK(fs->RenameFile(tmp, path));
  return fs->SyncDir(DirnameOf(path));
}

Status WriteManifest(FileSystem* fs, const std::string& dir,
                     const Manifest& m) {
  std::string p;
  PutVarint64(&p, m.epoch);
  PutString(&p, m.wal_file);
  PutVarint64(&p, m.tables.size());
  for (const ManifestTable& t : m.tables) {
    PutString(&p, t.name);
    p.push_back(t.backend == DeltaBackend::kVdt ? 1 : 0);
    PutVarint64(&p, t.columns.size());
    for (const ColumnDef& c : t.columns) {
      PutString(&p, c.name);
      p.push_back(static_cast<char>(c.type));
    }
    PutVarint64(&p, t.sort_key.size());
    for (ColumnId c : t.sort_key) PutVarint64(&p, c);
    PutVarint64(&p, t.chunk_rows);
    p.push_back(t.compression ? 1 : 0);
    PutString(&p, t.image_file);
    PutVarint64(&p, t.row_count);
  }
  return WriteFileAtomic(fs, dir + "/" + kManifestFileName,
                         FrameFile(kManifestMagic, p));
}

StatusOr<Manifest> ReadManifest(FileSystem* fs, const std::string& dir) {
  const std::string path = dir + "/" + kManifestFileName;
  PDT_ASSIGN_OR_RETURN(bool exists, fs->FileExists(path));
  if (!exists) return Status::NotFound("no manifest in " + dir);
  std::string bytes;
  PDT_RETURN_NOT_OK(fs->ReadFileToString(path, &bytes));
  PDT_ASSIGN_OR_RETURN(std::string p,
                       UnframeFile(kManifestMagic, bytes, "manifest"));
  Manifest m;
  size_t pos = 0;
  PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &m.epoch));
  PDT_RETURN_NOT_OK(GetString(p, &pos, &m.wal_file));
  uint64_t ntables;
  PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &ntables));
  for (uint64_t i = 0; i < ntables; ++i) {
    ManifestTable t;
    PDT_RETURN_NOT_OK(GetString(p, &pos, &t.name));
    if (pos >= p.size()) return Status::Corruption("truncated manifest");
    t.backend = p[pos] == 1 ? DeltaBackend::kVdt : DeltaBackend::kPdt;
    ++pos;
    uint64_t ncols;
    PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &ncols));
    for (uint64_t c = 0; c < ncols; ++c) {
      ColumnDef def;
      PDT_RETURN_NOT_OK(GetString(p, &pos, &def.name));
      if (pos >= p.size()) return Status::Corruption("truncated manifest");
      uint8_t tb = static_cast<uint8_t>(p[pos]);
      if (tb > static_cast<uint8_t>(TypeId::kString)) {
        return Status::Corruption("bad column type in manifest");
      }
      def.type = static_cast<TypeId>(tb);
      ++pos;
      t.columns.push_back(std::move(def));
    }
    uint64_t nsk;
    PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &nsk));
    for (uint64_t k = 0; k < nsk; ++k) {
      uint64_t col;
      PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &col));
      if (col >= t.columns.size()) {
        return Status::Corruption("bad sort-key column in manifest");
      }
      t.sort_key.push_back(static_cast<ColumnId>(col));
    }
    PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &t.chunk_rows));
    if (pos >= p.size()) return Status::Corruption("truncated manifest");
    t.compression = p[pos] != 0;
    ++pos;
    PDT_RETURN_NOT_OK(GetString(p, &pos, &t.image_file));
    PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &t.row_count));
    m.tables.push_back(std::move(t));
  }
  if (pos != p.size()) return Status::Corruption("trailing manifest bytes");
  return m;
}

Status SaveTableImage(FileSystem* fs, const std::string& path,
                      const Table& table) {
  const ColumnStore& store = table.store();
  const Schema& schema = table.schema();
  std::string p;
  PutVarint64(&p, store.num_rows());
  PutVarint64(&p, schema.num_columns());
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    // Materialize the stable column and encode it as one run.
    ColumnVector col(schema.column(c).type);
    for (size_t ci = 0; ci < store.num_chunks(); ++ci) {
      PDT_ASSIGN_OR_RETURN(auto chunk, store.FetchChunk(c, ci));
      col.AppendRange(*chunk, 0, chunk->size());
    }
    Encoding enc = ChooseEncoding(col, table.options().store.compression);
    std::string bytes;
    PDT_RETURN_NOT_OK(EncodeColumn(col, enc, &bytes));
    p.push_back(static_cast<char>(enc));
    PutVarint64(&p, bytes.size());
    p.append(bytes);
  }
  return WriteFileAtomic(fs, path, FrameFile(kImageMagic, p));
}

Status LoadTableImage(FileSystem* fs, const std::string& path, Table* table) {
  std::string bytes;
  PDT_RETURN_NOT_OK(fs->ReadFileToString(path, &bytes));
  PDT_ASSIGN_OR_RETURN(std::string p,
                       UnframeFile(kImageMagic, bytes, "table image"));
  size_t pos = 0;
  uint64_t row_count, ncols;
  PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &row_count));
  PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &ncols));
  const Schema& schema = table->schema();
  if (ncols != schema.num_columns()) {
    return Status::Corruption("table image column count mismatch");
  }
  std::vector<ColumnVector> cols;
  cols.reserve(ncols);
  for (ColumnId c = 0; c < ncols; ++c) {
    if (pos >= p.size()) return Status::Corruption("truncated table image");
    uint8_t eb = static_cast<uint8_t>(p[pos]);
    if (eb > static_cast<uint8_t>(Encoding::kForBitPack)) {
      return Status::Corruption("bad encoding in table image");
    }
    Encoding enc = static_cast<Encoding>(eb);
    ++pos;
    uint64_t len;
    PDT_RETURN_NOT_OK(GetVarint64(p, &pos, &len));
    if (len > p.size() - pos) {
      return Status::Corruption("truncated table image");
    }
    ColumnVector col(schema.column(c).type);
    PDT_RETURN_NOT_OK(DecodeColumn(p.substr(pos, len), schema.column(c).type,
                                   enc, row_count, &col));
    pos += len;
    cols.push_back(std::move(col));
  }
  if (pos != p.size()) return Status::Corruption("trailing image bytes");
  return table->LoadColumns(std::move(cols));
}

}  // namespace pdtstore

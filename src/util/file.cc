#include "util/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace pdtstore {

std::string DirnameOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " failed for " + path + ": " +
                         std::strerror(errno));
}

// ---------------------------------------------------------------------
// POSIX implementation.
// ---------------------------------------------------------------------

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : f_(f), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  Status Append(std::string_view data) override {
    if (f_ == nullptr) return Status::IOError("file closed: " + path_);
    if (std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      return ErrnoStatus("write", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (f_ == nullptr) return Status::IOError("file closed: " + path_);
    if (std::fflush(f_) != 0) return ErrnoStatus("fflush", path_);
    if (::fsync(::fileno(f_)) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (f_ == nullptr) return Status::OK();
    int rc = std::fclose(f_);
    f_ = nullptr;
    if (rc != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  std::FILE* f_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return ErrnoStatus("open", path);
    // Checked seek/tell (ftell returns -1 on error, e.g. for a pipe);
    // an unchecked -1 would be resized into a ~SIZE_MAX allocation.
    Status st = Status::OK();
    long size = -1;
    if (std::fseek(f, 0, SEEK_END) != 0 || (size = std::ftell(f)) < 0 ||
        std::fseek(f, 0, SEEK_SET) != 0) {
      st = ErrnoStatus("seek", path);
    } else {
      out->resize(static_cast<size_t>(size));
      if (std::fread(out->data(), 1, out->size(), f) != out->size()) {
        st = ErrnoStatus("read", path);
      }
    }
    std::fclose(f);
    if (!st.ok()) out->clear();
    return st;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return ErrnoStatus("remove", path);
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    // The new length is file metadata: fsync the file so a crash cannot
    // resurrect the cut-off bytes (recovery appends at this offset, and
    // a resurrected tail would shift every later frame off its LSN).
    int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0) return ErrnoStatus("open-for-fsync", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync", path);
    return Status::OK();
  }

  StatusOr<bool> FileExists(const std::string& path) override {
    struct ::stat st;
    if (::stat(path.c_str(), &st) == 0) return true;
    if (errno == ENOENT || errno == ENOTDIR) return false;
    return ErrnoStatus("stat", path);
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
      return Status::OK();
    }
    return ErrnoStatus("mkdir", path);
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus("open-dir", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync-dir", path);
    return Status::OK();
  }
};

}  // namespace

FileSystem* FileSystem::Default() {
  static PosixFileSystem fs;
  return &fs;
}

// ---------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------

/// Buffers appends in memory; Sync pushes them through the parent fs'
/// crash budget (possibly tearing) into the base file.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingFs* fs,
                     std::unique_ptr<WritableFile> base)
      : fs_(fs), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    PDT_RETURN_NOT_OK(fs_->CheckAliveLocked());
    pending_.append(data);
    return Status::OK();
  }

  Status Sync() override { return Persist(/*sync=*/true); }

  // Close flushes buffered bytes without the durability barrier; the
  // crash model still meters them (an OS may write cached pages at any
  // moment, so a crash point inside them must be representable).
  Status Close() override {
    Status st = Persist(/*sync=*/false);
    Status cl = base_->Close();
    return st.ok() ? cl : st;
  }

 private:
  Status Persist(bool sync) {
    std::lock_guard<std::mutex> lock(fs_->mu_);
    PDT_RETURN_NOT_OK(fs_->CheckAliveLocked());
    if (sync && fs_->fail_next_sync_) {
      // Failed fsync: the page cache is gone, the process lives on.
      fs_->fail_next_sync_ = false;
      pending_.clear();
      return Status::IOError("injected fsync failure");
    }
    uint64_t budget = fs_->crash_after_bytes_;
    if (budget != FaultInjectingFs::kNoFault && pending_.size() > budget) {
      // The machine dies mid-write: persist the prefix (torn write),
      // then lose every directory entry that was never SyncDir'ed —
      // including, possibly, this very file's name.
      std::string_view torn(pending_.data(), static_cast<size_t>(budget));
      (void)base_->Append(torn);
      (void)base_->Sync();
      fs_->bytes_persisted_ += budget;
      fs_->crashed_ = true;
      pending_.clear();
      fs_->LoseUnsyncedDirOpsLocked();
      return Status::IOError("injected crash (torn write)");
    }
    PDT_RETURN_NOT_OK(base_->Append(pending_));
    if (sync) PDT_RETURN_NOT_OK(base_->Sync());
    fs_->bytes_persisted_ += pending_.size();
    if (budget != FaultInjectingFs::kNoFault) {
      fs_->crash_after_bytes_ = budget - pending_.size();
    }
    pending_.clear();
    return Status::OK();
  }

  FaultInjectingFs* fs_;
  std::unique_ptr<WritableFile> base_;
  std::string pending_;
};

FaultInjectingFs::FaultInjectingFs(FileSystem* base) : base_(base) {}

void FaultInjectingFs::ScheduleCrashAfterBytes(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_after_bytes_ = n;
}

void FaultInjectingFs::ScheduleCrashAtRename(int k, RenameCrash where) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_rename_ = k;
  rename_crash_where_ = where;
}

void FaultInjectingFs::FailNextSync() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_next_sync_ = true;
}

bool FaultInjectingFs::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t FaultInjectingFs::bytes_persisted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_persisted_;
}

Status FaultInjectingFs::CheckAliveLocked() const {
  if (crashed_) return Status::IOError("injected crash (machine is down)");
  return Status::OK();
}

void FaultInjectingFs::RestoreFile(const std::string& path,
                                   const std::string& contents) {
  auto f = base_->NewWritableFile(path, /*truncate=*/true);
  if (!f.ok()) return;
  (void)(*f)->Append(contents);
  (void)(*f)->Sync();
  (void)(*f)->Close();
}

void FaultInjectingFs::LoseUnsyncedDirOpsLocked() {
  // Newest-first, so chained ops (create tmp, rename tmp -> target)
  // unwind in order. Undo is best-effort against the base fs.
  for (auto it = pending_dir_ops_.rbegin(); it != pending_dir_ops_.rend();
       ++it) {
    switch (it->kind) {
      case PendingDirOp::kCreate:
        (void)base_->DeleteFile(it->path);
        break;
      case PendingDirOp::kRename:
        if (it->path_existed) {
          RestoreFile(it->path, it->saved_path);
        } else {
          (void)base_->DeleteFile(it->path);
        }
        RestoreFile(it->from, it->saved_from);
        break;
      case PendingDirOp::kDelete:
        RestoreFile(it->path, it->saved_path);
        break;
    }
  }
  pending_dir_ops_.clear();
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingFs::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  PDT_RETURN_NOT_OK(CheckAliveLocked());
  PDT_ASSIGN_OR_RETURN(bool existed, base_->FileExists(path));
  PDT_ASSIGN_OR_RETURN(auto base, base_->NewWritableFile(path, truncate));
  if (!existed) {
    // A brand-new name is a directory entry: until SyncDir on the
    // parent, a crash erases it — even if the file's *bytes* were
    // fsynced. (Opening an existing file, truncating or appending,
    // touches only the inode; file Sync covers that.)
    PendingDirOp op;
    op.kind = PendingDirOp::kCreate;
    op.dir = DirnameOf(path);
    op.path = path;
    pending_dir_ops_.push_back(std::move(op));
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingFile>(this, std::move(base)));
}

Status FaultInjectingFs::ReadFileToString(const std::string& path,
                                          std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PDT_RETURN_NOT_OK(CheckAliveLocked());
  }
  return base_->ReadFileToString(path, out);
}

Status FaultInjectingFs::RenameFile(const std::string& from,
                                    const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  PDT_RETURN_NOT_OK(CheckAliveLocked());
  if (crash_at_rename_ > 0 && --crash_at_rename_ == 0) {
    crashed_ = true;
    if (rename_crash_where_ == RenameCrash::kBefore) {
      // The machine dies with the rename never issued; everything else
      // still unsynced dies with it.
      LoseUnsyncedDirOpsLocked();
      return Status::IOError("injected crash (before rename)");
    }
    // kAfter: this rename reached disk (by definition of the fault),
    // but the caller never learns of it — and every *other* unsynced
    // entry change is still lost (the rollback tolerates the source
    // file having been renamed away).
    (void)base_->RenameFile(from, to);
    LoseUnsyncedDirOpsLocked();
    return Status::IOError("injected crash (after rename)");
  }
  // Save both sides for rollback before the live view changes.
  PendingDirOp op;
  op.kind = PendingDirOp::kRename;
  op.dir = DirnameOf(to);
  op.path = to;
  op.from = from;
  PDT_ASSIGN_OR_RETURN(op.path_existed, base_->FileExists(to));
  if (op.path_existed) {
    PDT_RETURN_NOT_OK(base_->ReadFileToString(to, &op.saved_path));
  }
  PDT_RETURN_NOT_OK(base_->ReadFileToString(from, &op.saved_from));
  PDT_RETURN_NOT_OK(base_->RenameFile(from, to));
  pending_dir_ops_.push_back(std::move(op));
  return Status::OK();
}

Status FaultInjectingFs::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  PDT_RETURN_NOT_OK(CheckAliveLocked());
  PendingDirOp op;
  op.kind = PendingDirOp::kDelete;
  op.dir = DirnameOf(path);
  op.path = path;
  PDT_RETURN_NOT_OK(base_->ReadFileToString(path, &op.saved_path));
  PDT_RETURN_NOT_OK(base_->DeleteFile(path));
  pending_dir_ops_.push_back(std::move(op));
  return Status::OK();
}

Status FaultInjectingFs::TruncateFile(const std::string& path,
                                      uint64_t size) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PDT_RETURN_NOT_OK(CheckAliveLocked());
  }
  return base_->TruncateFile(path, size);
}

StatusOr<bool> FaultInjectingFs::FileExists(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PDT_RETURN_NOT_OK(CheckAliveLocked());
  }
  return base_->FileExists(path);
}

Status FaultInjectingFs::CreateDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PDT_RETURN_NOT_OK(CheckAliveLocked());
  }
  return base_->CreateDir(path);
}

Status FaultInjectingFs::SyncDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  PDT_RETURN_NOT_OK(CheckAliveLocked());
  // Every journaled entry change under this directory is now durable.
  pending_dir_ops_.erase(
      std::remove_if(pending_dir_ops_.begin(), pending_dir_ops_.end(),
                     [&path](const PendingDirOp& op) {
                       return op.dir == path;
                     }),
      pending_dir_ops_.end());
  return base_->SyncDir(path);
}

}  // namespace pdtstore

// Hand-verified TPC-H kernel tests: tiny handcrafted lineitem/orders
// contents with analytically computed expected aggregates, so the query
// kernels are checked against absolute numbers (the generator-based tests
// only check cross-backend agreement).
#include <gtest/gtest.h>

#include "db/database.h"
#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/project.h"
#include "tpch/queries.h"
#include "tpch/tpch_schema.h"

namespace pdtstore {
namespace tpch {
namespace {

// A lineitem row with only the fields the tested kernels read set
// meaningfully; the rest are fixed plausible values.
Tuple Line(int64_t okey, int64_t line, double qty, double price,
           double disc, int64_t shipdate, std::string rflag = "N",
           std::string lstatus = "O") {
  return {okey,      int64_t{1}, int64_t{1}, line,
          qty,       price,      disc,       0.05,
          rflag,     lstatus,    shipdate,   shipdate + 10,
          shipdate + 20, std::string("MAIL")};
}

class HandcraftedTpch : public ::testing::Test {
 protected:
  void SetUp() override {
    TableOptions opts;
    tables_.lineitem =
        *db_.CreateTable("lineitem", LineitemSchema(), opts);
    tables_.orders = *db_.CreateTable("orders", OrdersSchema(), opts);
    tables_.customer =
        *db_.CreateTable("customer", CustomerSchema(), opts);
    tables_.part = *db_.CreateTable("part", PartSchema(), opts);
    tables_.supplier =
        *db_.CreateTable("supplier", SupplierSchema(), opts);
    tables_.nation = *db_.CreateTable("nation", NationSchema(), opts);
    // Empty dimensions are fine for the kernels under test.
    ASSERT_TRUE(tables_.customer->Load({{int64_t{1}, "c", int64_t{0}, 0.0,
                                         "BUILDING"}})
                    .ok());
    ASSERT_TRUE(tables_.part
                    ->Load({{int64_t{1}, "green thing", "Brand#23",
                             "ECONOMY ANODIZED STEEL", int64_t{15},
                             "MED BOX", 900.0}})
                    .ok());
    ASSERT_TRUE(
        tables_.supplier->Load({{int64_t{1}, "s", int64_t{7}, 0.0}}).ok());
    std::vector<Tuple> nations;
    for (int64_t i = 0; i < 25; ++i) {
      nations.push_back({i, "N" + std::to_string(i), i % 5});
    }
    ASSERT_TRUE(tables_.nation->Load(nations).ok());
  }

  Database db_;
  TpchTables tables_;
};

TEST_F(HandcraftedTpch, Q6RevenueExactlyComputed) {
  // Q6: sum(price * disc) over 1994 shipments with disc in [0.05, 0.07]
  // and qty < 24.
  int64_t in94 = DayNumber(1994, 6, 1);
  int64_t in95 = DayNumber(1995, 6, 1);
  ASSERT_TRUE(tables_.lineitem
                  ->Load({
                      Line(1, 1, 10, 1000.0, 0.05, in94),  // qualifies: 50
                      Line(1, 2, 30, 1000.0, 0.06, in94),  // qty too big
                      Line(2, 1, 10, 500.0, 0.06, in94),   // qualifies: 30
                      Line(2, 2, 10, 500.0, 0.09, in94),   // disc too big
                      Line(3, 1, 10, 800.0, 0.07, in95),   // wrong year
                  })
                  .ok());
  ASSERT_TRUE(tables_.orders->Load({}).ok());
  auto r = RunTpchQuery(6, tables_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows, 1u);
  // Q6 revenue is extendedprice * discount (not scaled by quantity).
  EXPECT_NEAR(r->checksum, 1000.0 * 0.05 + 500.0 * 0.06, 1e-9);
}

TEST_F(HandcraftedTpch, Q1GroupsAndSumsExactly) {
  int64_t old_date = DayNumber(1994, 1, 1);
  ASSERT_TRUE(tables_.lineitem
                  ->Load({
                      Line(1, 1, 5, 100.0, 0.1, old_date, "A", "F"),
                      Line(1, 2, 7, 200.0, 0.0, old_date, "A", "F"),
                      Line(2, 1, 3, 300.0, 0.2, old_date, "R", "F"),
                      // Shipped after the Q1 cutoff: excluded.
                      Line(3, 1, 9, 400.0, 0.0, DayNumber(1998, 11, 1),
                           "N", "O"),
                  })
                  .ok());
  ASSERT_TRUE(tables_.orders->Load({}).ok());
  auto r = RunTpchQuery(1, tables_);
  ASSERT_TRUE(r.ok());
  // Two groups: (A,F) and (R,F).
  EXPECT_EQ(r->rows, 2u);
  // Checksum includes sum_qty for both groups: 12 and 3; spot-check that
  // the A/F group's sums appear by recomputing the full checksum's parts:
  // group A,F: qty 12, price 300, disc_price 90+200=290,
  //            charge 290*1.05=304.5, avgs 6/150/0.05, count 2
  // group R,F: qty 3, price 300, disc_price 240, charge 252,
  //            avgs 3/300/0.2, count 1
  double expected = 0;
  expected += 12 + 300 + 290 + 304.5 + 6 + 150 + 0.05 + 2;
  expected += 3 + 300 + 240 + 252 + 3 + 300 + 0.2 + 1;
  EXPECT_NEAR(r->checksum, expected, 1e-9);
}

TEST_F(HandcraftedTpch, Q4CountsLateOrdersPerPriority) {
  int64_t q3_93 = DayNumber(1993, 8, 1);
  ASSERT_TRUE(tables_.orders
                  ->Load({
                      {q3_93, int64_t{1}, int64_t{1}, "F", 0.0, "1-URGENT",
                       int64_t{0}},
                      {q3_93 + 1, int64_t{2}, int64_t{1}, "F", 0.0,
                       "1-URGENT", int64_t{0}},
                      {q3_93 + 2, int64_t{3}, int64_t{1}, "F", 0.0,
                       "5-LOW", int64_t{0}},
                      // Outside the quarter: excluded.
                      {DayNumber(1994, 8, 1), int64_t{4}, int64_t{1}, "F",
                       0.0, "1-URGENT", int64_t{0}},
                  })
                  .ok());
  // Order 1: late line (commit < receipt); order 2: on-time line;
  // order 3: late line; order 4: late but excluded by date.
  auto late = [](int64_t okey) {
    Tuple t = Line(okey, 1, 1, 10.0, 0.0, DayNumber(1993, 8, 10));
    t[kLCommitdate] = Value(DayNumber(1993, 8, 15));
    t[kLReceiptdate] = Value(DayNumber(1993, 8, 20));  // late
    return t;
  };
  auto ontime = [](int64_t okey) {
    Tuple t = Line(okey, 1, 1, 10.0, 0.0, DayNumber(1993, 8, 10));
    t[kLCommitdate] = Value(DayNumber(1993, 8, 25));
    t[kLReceiptdate] = Value(DayNumber(1993, 8, 20));  // on time
    return t;
  };
  ASSERT_TRUE(tables_.lineitem
                  ->Load({late(1), ontime(2), late(3), late(4)})
                  .ok());
  auto r = RunTpchQuery(4, tables_);
  ASSERT_TRUE(r.ok());
  // Groups: 1-URGENT count 1 (order 1), 5-LOW count 1 (order 3).
  EXPECT_EQ(r->rows, 2u);
  EXPECT_NEAR(r->checksum, 2.0, 1e-9);  // two counts of 1
}

TEST_F(HandcraftedTpch, Q13DistributionExact) {
  int64_t d = DayNumber(1995, 1, 1);
  // Customer 1 has 3 orders, customer 2 has 1, customer 3 has 1.
  ASSERT_TRUE(tables_.orders
                  ->Load({
                      {d, int64_t{1}, int64_t{1}, "F", 0.0, "5-LOW",
                       int64_t{0}},
                      {d, int64_t{2}, int64_t{1}, "F", 0.0, "5-LOW",
                       int64_t{0}},
                      {d, int64_t{3}, int64_t{1}, "F", 0.0, "5-LOW",
                       int64_t{0}},
                      {d, int64_t{4}, int64_t{2}, "F", 0.0, "5-LOW",
                       int64_t{0}},
                      {d, int64_t{5}, int64_t{3}, "F", 0.0, "5-LOW",
                       int64_t{0}},
                  })
                  .ok());
  ASSERT_TRUE(tables_.lineitem->Load({}).ok());
  auto r = RunTpchQuery(13, tables_);
  ASSERT_TRUE(r.ok());
  // Distribution: order-count 3 -> 1 customer; order-count 1 -> 2.
  EXPECT_EQ(r->rows, 2u);
  EXPECT_NEAR(r->checksum, (3 + 1) + (1 + 2), 1e-9);
}

}  // namespace
}  // namespace tpch
}  // namespace pdtstore

// Executor operator tests: filter, project, hash aggregation, hash join
// (inner/semi/anti), sort/top-k, and pipeline composition.
#include <gtest/gtest.h>

#include "exec/filter.h"
#include "exec/hash_agg.h"
#include "exec/hash_join.h"
#include "exec/operator.h"
#include "exec/project.h"
#include "exec/sort.h"

namespace pdtstore {
namespace {

Batch MakeBatch(std::vector<std::vector<int64_t>> int_cols,
                std::vector<std::vector<double>> dbl_cols = {},
                std::vector<std::vector<std::string>> str_cols = {}) {
  Batch b;
  std::vector<ColumnId> ids;
  for (auto& c : int_cols) {
    ColumnVector col(TypeId::kInt64);
    col.ints() = std::move(c);
    ids.push_back(static_cast<ColumnId>(b.columns().size()));
    b.columns().push_back(std::move(col));
  }
  for (auto& c : dbl_cols) {
    ColumnVector col(TypeId::kDouble);
    col.doubles() = std::move(c);
    ids.push_back(static_cast<ColumnId>(b.columns().size()));
    b.columns().push_back(std::move(col));
  }
  for (auto& c : str_cols) {
    ColumnVector col(TypeId::kString);
    col.strings() = std::move(c);
    ids.push_back(static_cast<ColumnId>(b.columns().size()));
    b.columns().push_back(std::move(col));
  }
  b.set_column_ids(std::move(ids));
  return b;
}

std::vector<Tuple> Drain(BatchSource* src, size_t batch = 3) {
  auto rows = CollectRows(src, batch);
  EXPECT_TRUE(rows.ok());
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

TEST(VectorSourceTest, EmitsInSlices) {
  VectorSource src(MakeBatch({{1, 2, 3, 4, 5}}));
  Batch out;
  auto r1 = src.Next(&out, 2);
  ASSERT_TRUE(r1.ok() && *r1);
  EXPECT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.start_rid(), 0u);
  auto r2 = src.Next(&out, 10);
  ASSERT_TRUE(r2.ok() && *r2);
  EXPECT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.start_rid(), 2u);
  auto r3 = src.Next(&out, 10);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(*r3);
}

TEST(FilterTest, Int64BetweenAndCompaction) {
  auto src = std::make_unique<VectorSource>(
      MakeBatch({{1, 5, 10, 15, 20}, {100, 101, 102, 103, 104}}));
  FilterNode filter(std::move(src), Int64Between(0, 5, 15));
  auto rows = Drain(&filter);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], Value(101));
  EXPECT_EQ(rows[2][1], Value(103));
}

TEST(FilterTest, AndComposition) {
  auto src = std::make_unique<VectorSource>(MakeBatch(
      {{1, 2, 3, 4}}, {}, {{"a", "b", "a", "b"}}));
  FilterNode filter(std::move(src),
                    And({Int64Between(0, 2, 4), StringEquals(1, "b")}));
  auto rows = Drain(&filter);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value(2));
  EXPECT_EQ(rows[1][0], Value(4));
}

TEST(ProjectTest, RevenueExpression) {
  auto src = std::make_unique<VectorSource>(
      MakeBatch({}, {{100.0, 200.0}, {0.1, 0.25}}));
  ProjectNode proj(std::move(src), {Revenue(0, 1), ColumnRef(0)});
  auto rows = Drain(&proj);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 90.0);
  EXPECT_DOUBLE_EQ(rows[1][0].AsDouble(), 150.0);
}

TEST(HashAggTest, GroupedSumCountMinMaxAvg) {
  auto src = std::make_unique<VectorSource>(MakeBatch(
      {{1, 2, 1, 2, 1}}, {{10.0, 20.0, 30.0, 40.0, 50.0}}));
  HashAggNode agg(std::move(src), {0},
                  {{AggKind::kSum, 1},
                   {AggKind::kCount, 0},
                   {AggKind::kMin, 1},
                   {AggKind::kMax, 1},
                   {AggKind::kAvg, 1}});
  auto rows = Drain(&agg);
  ASSERT_EQ(rows.size(), 2u);
  // Groups in first-appearance order: 1 then 2.
  EXPECT_EQ(rows[0][0], Value(1));
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 90.0);
  EXPECT_EQ(rows[0][2], Value(3));
  EXPECT_DOUBLE_EQ(rows[0][3].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 50.0);
  EXPECT_DOUBLE_EQ(rows[0][5].AsDouble(), 30.0);
  EXPECT_EQ(rows[1][0], Value(2));
  EXPECT_DOUBLE_EQ(rows[1][1].AsDouble(), 60.0);
}

TEST(HashAggTest, GlobalAggregateOverEmptyInput) {
  auto src = std::make_unique<VectorSource>(MakeBatch({{}}));
  HashAggNode agg(std::move(src), {}, {{AggKind::kSum, 0},
                                       {AggKind::kCount, 0}});
  auto rows = Drain(&agg);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 0.0);
  EXPECT_EQ(rows[0][1], Value(0));
}

TEST(HashJoinTest, InnerJoinProducesMatches) {
  auto probe = std::make_unique<VectorSource>(
      MakeBatch({{1, 2, 3, 2}}, {{10.0, 20.0, 30.0, 40.0}}));
  auto build = std::make_unique<VectorSource>(
      MakeBatch({{2, 3, 4}}, {}, {{"two", "three", "four"}}));
  HashJoinNode join(std::move(probe), std::move(build), {0}, {0});
  auto rows = Drain(&join);
  ASSERT_EQ(rows.size(), 3u);  // keys 2, 3, 2 match
  EXPECT_EQ(rows[0][3], Value("two"));
  EXPECT_EQ(rows[1][3], Value("three"));
  EXPECT_EQ(rows[2][3], Value("two"));
}

TEST(HashJoinTest, SemiAndAnti) {
  auto make_probe = [] {
    return std::make_unique<VectorSource>(MakeBatch({{1, 2, 3, 4}}));
  };
  auto make_build = [] {
    return std::make_unique<VectorSource>(MakeBatch({{2, 4, 2}}));
  };
  HashJoinNode semi(make_probe(), make_build(), {0}, {0},
                    JoinKind::kLeftSemi);
  auto semi_rows = Drain(&semi);
  ASSERT_EQ(semi_rows.size(), 2u);  // 2 and 4, once each
  EXPECT_EQ(semi_rows[0][0], Value(2));
  EXPECT_EQ(semi_rows[1][0], Value(4));

  HashJoinNode anti(make_probe(), make_build(), {0}, {0},
                    JoinKind::kLeftAnti);
  auto anti_rows = Drain(&anti);
  ASSERT_EQ(anti_rows.size(), 2u);  // 1 and 3
  EXPECT_EQ(anti_rows[0][0], Value(1));
  EXPECT_EQ(anti_rows[1][0], Value(3));
}

TEST(SortTest, MultiKeyAndLimit) {
  auto src = std::make_unique<VectorSource>(MakeBatch(
      {{2, 1, 2, 1}}, {{5.0, 6.0, 7.0, 8.0}}));
  SortNode sorter(std::move(src), {{0, false}, {1, true}});
  auto rows = Drain(&sorter);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], Value(1));
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 8.0);
  EXPECT_EQ(rows[3][0], Value(2));
  EXPECT_DOUBLE_EQ(rows[3][1].AsDouble(), 5.0);

  auto src2 = std::make_unique<VectorSource>(MakeBatch({{3, 1, 2}}));
  SortNode topk(std::move(src2), {{0, false}}, 2);
  auto top_rows = Drain(&topk);
  ASSERT_EQ(top_rows.size(), 2u);
  EXPECT_EQ(top_rows[0][0], Value(1));
  EXPECT_EQ(top_rows[1][0], Value(2));
}

TEST(PipelineTest, FilterAggSortCompose) {
  auto src = std::make_unique<VectorSource>(MakeBatch(
      {{1, 1, 2, 2, 3, 3}}, {{1.0, 2.0, 3.0, 4.0, 5.0, 100.0}}));
  auto filter = std::make_unique<FilterNode>(
      std::move(src), DoubleInRange(1, 0.0, 50.0));
  auto agg = std::make_unique<HashAggNode>(
      std::move(filter), std::vector<size_t>{0},
      std::vector<AggSpec>{{AggKind::kSum, 1}});
  SortNode sorter(std::move(agg), {{1, true}});
  auto rows = Drain(&sorter);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0], Value(2));  // sum 7
  EXPECT_DOUBLE_EQ(rows[0][1].AsDouble(), 7.0);
  EXPECT_EQ(rows[2][0], Value(1));  // sum 3
}

TEST(MaterializeAllTest, ConcatenatesBatches) {
  VectorSource src(MakeBatch({{1, 2, 3, 4, 5}}));
  auto all = MaterializeAll(&src, 2);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 5u);
}

}  // namespace
}  // namespace pdtstore

#include "exec/hash_join.h"

#include "exec/operator.h"

namespace pdtstore {

JoinTable JoinTable::Build(Batch build_rows, std::vector<size_t> keys) {
  // An exhausted build side materializes to a column-less batch; leave
  // the table empty rather than indexing its key columns.
  std::vector<uint64_t> hashes;
  const size_t n = build_rows.num_rows();
  if (n > 0) {
    hashes.assign(n, kHashSeed);
    for (size_t k : keys) {
      build_rows.column(k).HashColumn(hashes.data());
    }
  }
  return BuildWithHashes(std::move(build_rows), std::move(keys),
                         std::move(hashes));
}

JoinTable JoinTable::BuildWithHashes(Batch build_rows,
                                     std::vector<size_t> keys,
                                     std::vector<uint64_t> hashes) {
  JoinTable t;
  t.rows = std::move(build_rows);
  t.key_cols = std::move(keys);
  const size_t n = t.rows.num_rows();
  if (n > 0) {
    t.buckets.reserve(n);
    for (size_t row = 0; row < n; ++row) {
      t.buckets[hashes[row]].push_back(static_cast<uint32_t>(row));
    }
  }
  return t;
}

size_t PartitionedJoinTable::TotalRows() const {
  size_t n = 0;
  for (const JoinTable& p : parts) n += p.rows.num_rows();
  return n;
}

bool JoinTable::KeysEqual(const std::vector<size_t>& probe_keys,
                          const Batch& probe, size_t probe_row,
                          size_t build_row) const {
  for (size_t k = 0; k < probe_keys.size(); ++k) {
    if (rows.column(key_cols[k])
            .CompareAt(build_row, probe.column(probe_keys[k]),
                       probe_row) != 0) {
      return false;
    }
  }
  return true;
}

void ProbeJoinBatch(const PartitionedJoinTable& table,
                    const std::vector<size_t>& probe_keys, JoinKind kind,
                    const Batch& in, Batch* out, JoinProbeScratch* scratch) {
  const size_t n = in.num_rows();
  // The build-column layout for the output proto: any partition that
  // carries columns (empty partitions of a partitioned build still do;
  // a fully empty serial build side materializes column-less, and the
  // inner output then has probe columns only, as before partitioning).
  const JoinTable* layout_part = &table.parts[0];
  for (const JoinTable& p : table.parts) {
    if (p.rows.num_columns() > 0) {
      layout_part = &p;
      break;
    }
  }
  if (!scratch->proto_init) {
    std::vector<ColumnId> ids;
    for (size_t c = 0; c < in.num_columns(); ++c) {
      ids.push_back(static_cast<ColumnId>(c));
      scratch->out_proto.columns().emplace_back(in.column(c).type());
    }
    if (kind == JoinKind::kInner) {
      for (size_t c = 0; c < layout_part->rows.num_columns(); ++c) {
        ids.push_back(static_cast<ColumnId>(in.num_columns() + c));
        scratch->out_proto.columns().emplace_back(
            layout_part->rows.column(c).type());
      }
    }
    scratch->out_proto.set_column_ids(std::move(ids));
    scratch->proto_init = true;
  }
  out->ResetLike(scratch->out_proto);

  // One bulk hash pass per key column, then per-row bucket probes
  // against the row's hash partition.
  scratch->hashes.assign(n, kHashSeed);
  for (size_t k : probe_keys) {
    in.column(k).HashColumn(scratch->hashes.data());
  }

  if (kind == JoinKind::kInner) {
    if (table.parts.size() == 1) {
      // Single partition (every serial join): the pre-partitioned pass,
      // byte-identical output.
      const JoinTable& part = table.parts[0];
      scratch->probe_sel.clear();
      scratch->build_sel.clear();
      for (size_t row = 0; row < n; ++row) {
        auto it = part.buckets.find(scratch->hashes[row]);
        if (it == part.buckets.end()) continue;
        for (uint32_t b : it->second) {
          if (part.KeysEqual(probe_keys, in, row, b)) {
            scratch->probe_sel.push_back(static_cast<uint32_t>(row));
            scratch->build_sel.push_back(b);
          }
        }
      }
      for (size_t c = 0; c < in.num_columns(); ++c) {
        out->column(c).AppendGather(in.column(c), scratch->probe_sel);
      }
      for (size_t c = 0; c < part.rows.num_columns(); ++c) {
        out->column(in.num_columns() + c)
            .AppendGather(part.rows.column(c), scratch->build_sel);
      }
    } else {
      // Partitioned: route rows once, then gather per partition so
      // build_sel indices stay partition-local. Output rows come out
      // grouped by partition (probe order within each group) — the
      // parallel pipelines deliver unordered anyway.
      scratch->part_rows.resize(table.parts.size());
      for (SelVector& pr : scratch->part_rows) pr.clear();
      for (size_t row = 0; row < n; ++row) {
        scratch->part_rows[table.PartitionOf(scratch->hashes[row])]
            .push_back(static_cast<uint32_t>(row));
      }
      scratch->probe_sel.clear();
      for (size_t p = 0; p < table.parts.size(); ++p) {
        const JoinTable& part = table.parts[p];
        if (part.buckets.empty()) continue;
        scratch->build_sel.clear();
        const size_t probe_base = scratch->probe_sel.size();
        for (uint32_t row : scratch->part_rows[p].indices()) {
          auto it = part.buckets.find(scratch->hashes[row]);
          if (it == part.buckets.end()) continue;
          for (uint32_t b : it->second) {
            if (part.KeysEqual(probe_keys, in, row, b)) {
              scratch->probe_sel.push_back(row);
              scratch->build_sel.push_back(b);
            }
          }
        }
        if (scratch->probe_sel.size() == probe_base) continue;
        for (size_t c = 0; c < part.rows.num_columns(); ++c) {
          out->column(in.num_columns() + c)
              .AppendGather(part.rows.column(c), scratch->build_sel);
        }
      }
      for (size_t c = 0; c < in.num_columns(); ++c) {
        out->column(c).AppendGather(in.column(c), scratch->probe_sel);
      }
    }
  } else {
    // Semi/anti: mark matches in the keep bitmap, then compact
    // survivors column-wise through one expansion. Each probe row is
    // emitted at most once regardless of duplicate build matches.
    const bool want = kind == JoinKind::kLeftSemi;
    scratch->keep.Reset(n);
    for (size_t row = 0; row < n; ++row) {
      const uint64_t h = scratch->hashes[row];
      const JoinTable& part = table.parts[table.PartitionOf(h)];
      bool matched = false;
      auto it = part.buckets.find(h);
      if (it != part.buckets.end()) {
        for (uint32_t b : it->second) {
          if (part.KeysEqual(probe_keys, in, row, b)) {
            matched = true;
            break;
          }
        }
      }
      scratch->keep.SetTo(row, matched == want);
    }
    out->AppendFiltered(in, scratch->keep);
  }
}

// ---------------------------------------------------------------------
// JoinBuildHandle.
// ---------------------------------------------------------------------

JoinBuildHandle::JoinBuildHandle(std::unique_ptr<BatchSource> build_source,
                                 std::vector<size_t> build_keys) {
  // Shared-ptr capture: std::function requires copyability.
  std::shared_ptr<BatchSource> src = std::move(build_source);
  // Constructed on the query thread: capture its budget now, charge
  // when the build actually materializes. The lease lives on the handle
  // (lease_), so the charge spans the cached table's lifetime.
  lease_ = std::make_shared<BudgetLease>(CurrentBudget());
  producer_ = [src, lease = lease_, keys = std::move(build_keys)]()
      -> StatusOr<PartitionedJoinTable> {
    PDT_ASSIGN_OR_RETURN(Batch rows, MaterializeAll(src.get()));
    PDT_RETURN_NOT_OK(lease->Charge(rows.ByteSize()));
    PartitionedJoinTable t;
    t.parts.push_back(JoinTable::Build(std::move(rows), keys));
    return t;
  };
}

JoinBuildHandle::JoinBuildHandle(
    std::function<StatusOr<PartitionedJoinTable>()> producer)
    : producer_(std::move(producer)) {}

StatusOr<const PartitionedJoinTable*> JoinBuildHandle::Resolve() {
  if (!resolved_) {
    resolved_ = true;
    StatusOr<PartitionedJoinTable> table = producer_();
    producer_ = nullptr;  // release the build source / pipeline
    if (!table.ok()) {
      error_ = table.status();
    } else {
      table_ = std::move(*table);
    }
  }
  if (!error_.ok()) return error_;
  return &table_;
}

// ---------------------------------------------------------------------
// HashJoinNode.
// ---------------------------------------------------------------------

HashJoinNode::HashJoinNode(std::unique_ptr<BatchSource> probe,
                           std::unique_ptr<BatchSource> build,
                           std::vector<size_t> probe_keys,
                           std::vector<size_t> build_keys, JoinKind kind)
    : probe_(std::move(probe)),
      build_(std::make_shared<JoinBuildHandle>(std::move(build),
                                               std::move(build_keys))),
      probe_keys_(std::move(probe_keys)),
      kind_(kind) {}

HashJoinNode::HashJoinNode(std::unique_ptr<BatchSource> probe,
                           std::shared_ptr<JoinBuildHandle> build,
                           std::vector<size_t> probe_keys, JoinKind kind)
    : probe_(std::move(probe)),
      build_(std::move(build)),
      probe_keys_(std::move(probe_keys)),
      kind_(kind) {}

StatusOr<bool> HashJoinNode::Next(Batch* out, size_t max_rows) {
  if (table_ == nullptr) {
    PDT_ASSIGN_OR_RETURN(table_, build_->Resolve());
  }
  Batch in;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, probe_->Next(&in, max_rows));
    if (!more) return false;
    ProbeJoinBatch(*table_, probe_keys_, kind_, in, out, &scratch_);
    if (out->num_rows() > 0) return true;
  }
}

}  // namespace pdtstore

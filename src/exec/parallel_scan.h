// Morsel-driven parallel scan: an exchange operator that runs one merge
// cursor per worker over a shared queue of disjoint SID-range morsels
// (the natural work units LookupRange / chunk bounds provide — PDT layers
// are read-only during scans, so workers share them lock-free).
//
// The consumer stays a plain single-threaded BatchSource: pull-based
// operators (filter, agg, join) sit on top unchanged. Two delivery modes:
//   * ordered   — morsel outputs are emitted in morsel (= SID) order, so
//                 SID/RID-ordered consumers see exactly the sequence the
//                 single-threaded scan would produce;
//   * unordered — batches are emitted as workers finish them (same
//                 multiset of rows), for order-insensitive pipelines.
#ifndef PDTSTORE_EXEC_PARALLEL_SCAN_H_
#define PDTSTORE_EXEC_PARALLEL_SCAN_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "columnstore/batch.h"
#include "storage/sparse_index.h"
#include "util/thread_pool.h"

namespace pdtstore {

/// Default morsel granularity: ~64K SIDs amortize per-morsel setup
/// (cursor seek, source construction) to noise while leaving plenty of
/// morsels for dynamic load balancing on skewed update distributions.
constexpr size_t kDefaultMorselRows = 64 * 1024;

/// Scan execution knobs, plumbed through Table::Scan and the transaction
/// scan paths. The default (1 thread) is the unchanged serial scan.
struct ScanOptions {
  /// Worker threads; <= 0 means ThreadPool::DefaultThreads(). 1 = serial.
  int num_threads = 1;
  /// Emit morsels in SID order (true) or as completed (false).
  bool ordered = true;
  /// Morsel granularity in stable SIDs.
  size_t morsel_rows = kDefaultMorselRows;
  /// Rows per batch a worker pulls from its merge cursor.
  size_t batch_rows = kDefaultBatchSize;
};

/// Splits `ranges` (sorted, disjoint — the SparseIndex::LookupRange
/// invariant, asserted here in debug builds) into morsels of at most
/// `morsel_rows` SIDs, preserving order and disjointness.
std::vector<SidRange> SplitIntoMorsels(const std::vector<SidRange>& ranges,
                                       size_t morsel_rows);

/// Builds the per-morsel merge cursor: called once per morsel, on a
/// worker thread. `final_morsel` is true for the scan's last morsel (the
/// one that emits trailing inserts). Must be thread-safe (the sources it
/// returns only read shared immutable state).
using MorselSourceFactory = std::function<std::unique_ptr<BatchSource>(
    size_t morsel_idx, const SidRange& morsel, bool final_morsel)>;

/// The exchange: N workers claim morsels from an atomic queue, run the
/// factory-built merge cursor over each, and hand batches to the pulling
/// consumer. Workers pull into recycled batches (Batch::ResetLike inside
/// the sources) drawn from a free list that consumed batches return to,
/// so the steady state allocates nothing. In ordered mode, morsel
/// claiming is window-gated (head + 2×workers) to bound buffered output;
/// in unordered mode a bounded ready queue applies backpressure.
///
/// The first error from any worker aborts the scan and is returned from
/// Next(). Destruction aborts and joins outstanding workers.
class ParallelScanSource : public BatchSource {
 public:
  /// `renumber_rids` rewrites batch start RIDs with a running row count —
  /// used for ordered scans of sources that emit morsel-local positions
  /// (the VDT merge); PDT merge batches already carry global RIDs.
  ParallelScanSource(std::vector<SidRange> morsels,
                     MorselSourceFactory factory, ScanOptions options,
                     bool renumber_rids = false);
  ~ParallelScanSource() override;

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  struct MorselState {
    std::deque<Batch> batches;
    bool done = false;
  };

  void Start();
  void WorkerLoop();
  void RunWorker();
  // Swaps a free-list batch into `*b` (workers reuse consumer storage).
  void GrabRecycledBatch(Batch* b);
  // Refills drained_ with every batch currently available (one lock
  // acquisition amortized over many batches) and returns spent consumer
  // batches to the free list; false at end of stream.
  StatusOr<bool> Refill();
  // Emits up to max_rows of pending_ into out (batch larger than the
  // consumer's budget, sliced across several Next calls).
  bool EmitPendingSlice(Batch* out, size_t max_rows);

  std::vector<SidRange> morsels_;
  MorselSourceFactory factory_;
  ScanOptions opts_;
  const bool renumber_rids_;
  size_t num_workers_ = 0;

  std::unique_ptr<ThreadPool> pool_;
  std::mutex mu_;
  std::condition_variable producer_cv_;  // workers: claim window / queue room
  std::condition_variable consumer_cv_;  // consumer: output available
  std::vector<MorselState> states_;      // ordered mode, indexed by morsel
  std::deque<Batch> ready_;              // unordered mode
  std::vector<Batch> freelist_;          // recycled batch storage
  size_t next_morsel_ = 0;               // next morsel to claim
  size_t head_ = 0;                      // ordered: next morsel to emit
  size_t inflight_window_ = 0;           // ordered claim window
  size_t queue_cap_ = 0;                 // unordered backpressure bound
  size_t workers_live_ = 0;
  Status error_ = Status::OK();          // first worker failure
  bool abort_ = false;
  bool started_ = false;

  // Consumer-side state (only touched by the pulling thread).
  std::deque<Batch> drained_;  // batches taken from the exchange in bulk
  std::vector<Batch> spent_;   // consumed storage awaiting bulk recycle
  Batch pending_;
  size_t pending_off_ = 0;
  uint64_t rows_emitted_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_PARALLEL_SCAN_H_

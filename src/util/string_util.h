// Small string helpers shared across modules.
#ifndef PDTSTORE_UTIL_STRING_UTIL_H_
#define PDTSTORE_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pdtstore {

/// Joins parts with the given separator.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count as "12.3 MB" style text.
std::string HumanBytes(uint64_t bytes);

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_STRING_UTIL_H_

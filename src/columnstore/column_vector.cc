#include "columnstore/column_vector.h"

#include <cassert>

namespace pdtstore {

size_t ColumnVector::size() const {
  switch (type_) {
    case TypeId::kInt64:
      return ints_.size();
    case TypeId::kDouble:
      return doubles_.size();
    case TypeId::kString:
      return strings_.size();
  }
  return 0;
}

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  strings_.clear();
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case TypeId::kInt64:
      ints_.reserve(n);
      break;
    case TypeId::kDouble:
      doubles_.reserve(n);
      break;
    case TypeId::kString:
      strings_.reserve(n);
      break;
  }
}

void ColumnVector::Append(const Value& v) {
  assert(v.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.push_back(v.AsInt64());
      break;
    case TypeId::kDouble:
      doubles_.push_back(v.AsDouble());
      break;
    case TypeId::kString:
      strings_.push_back(v.AsString());
      break;
  }
}

void ColumnVector::AppendRun(const Value& v, size_t count) {
  assert(v.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.insert(ints_.end(), count, v.AsInt64());
      break;
    case TypeId::kDouble:
      doubles_.insert(doubles_.end(), count, v.AsDouble());
      break;
    case TypeId::kString:
      strings_.insert(strings_.end(), count, v.AsString());
      break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& other, size_t i) {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.push_back(other.ints_[i]);
      break;
    case TypeId::kDouble:
      doubles_.push_back(other.doubles_[i]);
      break;
    case TypeId::kString:
      strings_.push_back(other.strings_[i]);
      break;
  }
}

void ColumnVector::AppendRange(const ColumnVector& other, size_t begin,
                               size_t end) {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_.insert(ints_.end(), other.ints_.begin() + begin,
                   other.ints_.begin() + end);
      break;
    case TypeId::kDouble:
      doubles_.insert(doubles_.end(), other.doubles_.begin() + begin,
                      other.doubles_.begin() + end);
      break;
    case TypeId::kString:
      strings_.insert(strings_.end(), other.strings_.begin() + begin,
                      other.strings_.begin() + end);
      break;
  }
}

namespace {

// splitmix64 finalizer: full-avalanche mixing of a 64-bit word.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Folds a new element hash into the running per-row hash.
inline uint64_t CombineHash(uint64_t acc, uint64_t h) {
  return Mix64(acc ^ h);
}

inline uint64_t HashBytes(const char* data, size_t n) {
  // FNV-1a, finalized through Mix64 for avalanche.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ static_cast<uint8_t>(data[i])) * 0x100000001B3ULL;
  }
  return Mix64(h);
}

template <typename T>
void GatherInto(std::vector<T>& dst, const std::vector<T>& src,
                const SelVector& sel) {
  size_t base = dst.size();
  dst.resize(base + sel.size());
  for (size_t i = 0; i < sel.size(); ++i) dst[base + i] = src[sel[i]];
}

}  // namespace

void ColumnVector::AppendGather(const ColumnVector& other,
                                const SelVector& sel) {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64:
      GatherInto(ints_, other.ints_, sel);
      break;
    case TypeId::kDouble:
      GatherInto(doubles_, other.doubles_, sel);
      break;
    case TypeId::kString:
      GatherInto(strings_, other.strings_, sel);
      break;
  }
}

void ColumnVector::AppendFiltered(const ColumnVector& other,
                                  const KeepBitmap& keep) {
  assert(keep.size() <= other.size());
  // Word-at-a-time selection build + branchless gather beats a
  // per-element conditional copy on unpredictable bitmaps (one
  // miss-prone pass total, not one per column when called batch-wide).
  AppendGather(other, SelVector::FromKeep(keep));
}

void ColumnVector::AppendFiltered(const ColumnVector& other,
                                  const uint8_t* keep, size_t n) {
  assert(n <= other.size());
  AppendGather(other, SelVector::FromKeep(keep, n));
}

void ColumnVector::HashColumn(uint64_t* out) const {
  switch (type_) {
    case TypeId::kInt64:
      for (size_t i = 0; i < ints_.size(); ++i) {
        out[i] = CombineHash(out[i], Mix64(static_cast<uint64_t>(ints_[i])));
      }
      break;
    case TypeId::kDouble:
      for (size_t i = 0; i < doubles_.size(); ++i) {
        // Normalize -0.0 so values that compare equal hash equal.
        double d = doubles_[i] == 0.0 ? 0.0 : doubles_[i];
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        out[i] = CombineHash(out[i], Mix64(bits));
      }
      break;
    case TypeId::kString:
      for (size_t i = 0; i < strings_.size(); ++i) {
        out[i] = CombineHash(
            out[i], HashBytes(strings_[i].data(), strings_[i].size()));
      }
      break;
  }
}

Value ColumnVector::GetValue(size_t i) const {
  switch (type_) {
    case TypeId::kInt64:
      return Value(ints_[i]);
    case TypeId::kDouble:
      return Value(doubles_[i]);
    case TypeId::kString:
      return Value(strings_[i]);
  }
  return Value();
}

void ColumnVector::SetValue(size_t i, const Value& v) {
  assert(v.type() == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_[i] = v.AsInt64();
      break;
    case TypeId::kDouble:
      doubles_[i] = v.AsDouble();
      break;
    case TypeId::kString:
      strings_[i] = v.AsString();
      break;
  }
}

void ColumnVector::SetFrom(size_t i, const ColumnVector& other, size_t j) {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64:
      ints_[i] = other.ints_[j];
      break;
    case TypeId::kDouble:
      doubles_[i] = other.doubles_[j];
      break;
    case TypeId::kString:
      strings_[i] = other.strings_[j];
      break;
  }
}

int ColumnVector::CompareAt(size_t i, const ColumnVector& other,
                            size_t j) const {
  assert(other.type_ == type_);
  switch (type_) {
    case TypeId::kInt64: {
      int64_t a = ints_[i], b = other.ints_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kDouble: {
      double a = doubles_[i], b = other.doubles_[j];
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case TypeId::kString: {
      int c = strings_[i].compare(other.strings_[j]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

size_t ColumnVector::ByteSize() const {
  switch (type_) {
    case TypeId::kInt64:
      return ints_.size() * 8;
    case TypeId::kDouble:
      return doubles_.size() * 8;
    case TypeId::kString: {
      size_t total = strings_.size() * sizeof(std::string);
      for (const auto& s : strings_) total += s.capacity();
      return total;
    }
  }
  return 0;
}

}  // namespace pdtstore

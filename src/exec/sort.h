// SortNode: full materializing sort with optional LIMIT (top-k).
#ifndef PDTSTORE_EXEC_SORT_H_
#define PDTSTORE_EXEC_SORT_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"

namespace pdtstore {

/// One sort key: column index + direction.
struct SortKey {
  size_t idx;
  bool descending = false;
};

/// Materializing sort with optional limit (0 = unlimited).
class SortNode : public BatchSource {
 public:
  SortNode(std::unique_ptr<BatchSource> input, std::vector<SortKey> keys,
           size_t limit = 0)
      : input_(std::move(input)), keys_(std::move(keys)), limit_(limit) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  std::unique_ptr<BatchSource> input_;
  std::vector<SortKey> keys_;
  size_t limit_;
  bool built_ = false;
  std::unique_ptr<BatchSource> emitter_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_SORT_H_

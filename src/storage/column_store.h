// The stable table (TABLE0 of the paper): immutable, SK-ordered, chunked
// columnar storage. All reads go through a BufferPool so that scans can be
// run "cold" (counting simulated I/O) or "hot". Updates never touch this
// structure — they live in a PDT or VDT until a checkpoint rebuilds it.
#ifndef PDTSTORE_STORAGE_COLUMN_STORE_H_
#define PDTSTORE_STORAGE_COLUMN_STORE_H_

#include <memory>
#include <vector>

#include "columnstore/batch.h"
#include "columnstore/schema.h"
#include "storage/buffer_pool.h"
#include "storage/chunk.h"

namespace pdtstore {

/// Configuration of stable storage.
struct ColumnStoreOptions {
  size_t chunk_rows = 16384;   ///< values per chunk per column
  bool compression = true;     ///< choose encodings vs always-plain
  /// Decode chunks to the compressed-execution representation (live
  /// dictionary codes, RLE run sidecars) instead of plain copies. False
  /// is the decoded differential-reference path; results are identical.
  bool encoded_exec = true;
  /// Per-column encoding overrides for bulk load (empty = ChooseEncoding
  /// per chunk). Columns beyond the vector's size auto-choose; an
  /// encoding a chunk cannot support (type mismatch, FOR range too wide)
  /// falls back to plain. Used by the differential fuzzer to force
  /// plain/RLE/dict/FOR coverage.
  std::vector<Encoding> forced_encodings;
};

/// Immutable chunked columnar table image.
class ColumnStore {
 public:
  ColumnStore(Schema schema, ColumnStoreOptions options,
              std::shared_ptr<BufferPool> pool);

  /// Bulk-loads SK-ordered rows. Fails if rows are not sorted on the SK or
  /// contain SK duplicates (the SK is a key). Callable once.
  Status BulkLoad(const std::vector<Tuple>& rows);

  /// Column-wise bulk load (one ColumnVector per schema column, equal
  /// sizes, SK-ordered). This is the fast path used by generators and
  /// checkpoints.
  Status BulkLoadColumns(std::vector<ColumnVector> columns);

  const Schema& schema() const { return schema_; }
  const ColumnStoreOptions& options() const { return options_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_chunks() const { return chunk_bounds_.size(); }

  /// [start_sid, start_sid + rows) of chunk `ci`.
  std::pair<Sid, Sid> ChunkSidRange(size_t ci) const;

  /// Chunk index containing `sid`.
  size_t ChunkIndexForSid(Sid sid) const;

  /// Decoded values of column `col` in chunk `ci` (through the pool).
  StatusOr<std::shared_ptr<const ColumnVector>> FetchChunk(ColumnId col,
                                                           size_t ci) const;

  /// Chunk metadata (zone map etc.) of column `col`, chunk `ci`.
  const Chunk& chunk_meta(ColumnId col, size_t ci) const {
    return columns_[col][ci];
  }

  /// Random access to a single value (through the pool; O(1) amortized on
  /// repeated nearby access). Used for SK positioning of updates.
  StatusOr<Value> GetValue(ColumnId col, Sid sid) const;

  /// Materializes the full stable tuple at `sid`.
  StatusOr<Tuple> GetTuple(Sid sid) const;

  /// Extracts the SK of the stable tuple at `sid`.
  StatusOr<std::vector<Value>> GetSortKey(Sid sid) const;

  /// Total encoded ("on disk") bytes, per column and overall.
  uint64_t DiskBytes() const;
  uint64_t DiskBytesForColumn(ColumnId col) const;

  BufferPool* buffer_pool() const { return pool_.get(); }
  std::shared_ptr<BufferPool> shared_buffer_pool() const { return pool_; }

 private:
  uint64_t ChunkKey(ColumnId col, size_t ci) const;

  Schema schema_;
  ColumnStoreOptions options_;
  std::shared_ptr<BufferPool> pool_;
  // columns_[col][chunk]
  std::vector<std::vector<Chunk>> columns_;
  std::vector<Sid> chunk_bounds_;  // start SID of each chunk
  uint64_t num_rows_ = 0;
  uint64_t store_id_ = 0;  // distinguishes pool keys across store versions
  bool loaded_ = false;
};

}  // namespace pdtstore

#endif  // PDTSTORE_STORAGE_COLUMN_STORE_H_

#include "exec/hash_join.h"

#include "exec/operator.h"

namespace pdtstore {

Status HashJoinNode::BuildTable() {
  PDT_ASSIGN_OR_RETURN(build_rows_, MaterializeAll(build_.get()));
  // An exhausted build side materializes to a column-less batch; leave
  // the table empty rather than indexing its key columns.
  const size_t n = build_rows_.num_rows();
  if (n > 0) {
    std::vector<uint64_t> hashes(n, kHashSeed);
    for (size_t k : build_keys_) {
      build_rows_.column(k).HashColumn(hashes.data());
    }
    table_.reserve(n);
    for (size_t row = 0; row < n; ++row) {
      table_[hashes[row]].push_back(static_cast<uint32_t>(row));
    }
  }
  built_ = true;
  return Status::OK();
}

bool HashJoinNode::KeysEqual(const Batch& probe, size_t probe_row,
                             size_t build_row) const {
  for (size_t k = 0; k < probe_keys_.size(); ++k) {
    if (build_rows_.column(build_keys_[k])
            .CompareAt(build_row, probe.column(probe_keys_[k]),
                       probe_row) != 0) {
      return false;
    }
  }
  return true;
}

StatusOr<bool> HashJoinNode::Next(Batch* out, size_t max_rows) {
  if (!built_) {
    PDT_RETURN_NOT_OK(BuildTable());
  }
  Batch in;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, probe_->Next(&in, max_rows));
    if (!more) return false;
    const size_t n = in.num_rows();
    if (!proto_init_) {
      std::vector<ColumnId> ids;
      for (size_t c = 0; c < in.num_columns(); ++c) {
        ids.push_back(static_cast<ColumnId>(c));
        out_proto_.columns().emplace_back(in.column(c).type());
      }
      if (kind_ == JoinKind::kInner) {
        for (size_t c = 0; c < build_rows_.num_columns(); ++c) {
          ids.push_back(static_cast<ColumnId>(in.num_columns() + c));
          out_proto_.columns().emplace_back(build_rows_.column(c).type());
        }
      }
      out_proto_.set_column_ids(std::move(ids));
      proto_init_ = true;
    }
    out->ResetLike(out_proto_);

    // One bulk hash pass per key column, then per-row bucket probes.
    hashes_.assign(n, kHashSeed);
    for (size_t k : probe_keys_) {
      in.column(k).HashColumn(hashes_.data());
    }

    if (kind_ == JoinKind::kInner) {
      probe_sel_.clear();
      build_sel_.clear();
      for (size_t row = 0; row < n; ++row) {
        auto it = table_.find(hashes_[row]);
        if (it == table_.end()) continue;
        for (uint32_t b : it->second) {
          if (KeysEqual(in, row, b)) {
            probe_sel_.push_back(static_cast<uint32_t>(row));
            build_sel_.push_back(b);
          }
        }
      }
      for (size_t c = 0; c < in.num_columns(); ++c) {
        out->column(c).AppendGather(in.column(c), probe_sel_);
      }
      for (size_t c = 0; c < build_rows_.num_columns(); ++c) {
        out->column(in.num_columns() + c)
            .AppendGather(build_rows_.column(c), build_sel_);
      }
    } else {
      // Semi/anti: mark matches, then compact survivors column-wise.
      const uint8_t want = kind_ == JoinKind::kLeftSemi ? 1 : 0;
      keep_.assign(n, 0);
      for (size_t row = 0; row < n; ++row) {
        uint8_t matched = 0;
        auto it = table_.find(hashes_[row]);
        if (it != table_.end()) {
          for (uint32_t b : it->second) {
            if (KeysEqual(in, row, b)) {
              matched = 1;
              break;
            }
          }
        }
        keep_[row] = (matched == want);
      }
      out->AppendFiltered(in, keep_.data());
    }
    if (out->num_rows() > 0) return true;
  }
}

}  // namespace pdtstore

#include "tpch/htap_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/stopwatch.h"

namespace pdtstore {
namespace tpch {

double LatencyPercentile(std::vector<double>* samples, double p) {
  if (samples == nullptr || samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  // Nearest-rank: the smallest sample >= p of the distribution.
  size_t rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(samples->size())));
  if (rank == 0) rank = 1;
  if (rank > samples->size()) rank = samples->size();
  return (*samples)[rank - 1];
}

StatusOr<HtapReport> RunHtapScenario(const GenOptions& gen,
                                     TpchTables* tables, Wal* wal,
                                     WalWriter* writer,
                                     const HtapOptions& opts) {
  if (opts.writers <= 0 || opts.readers < 0 ||
      opts.streams_per_writer <= 0 || opts.queries.empty()) {
    return Status::InvalidArgument("bad HTAP scenario parameters");
  }
  const int num_streams = opts.writers * opts.streams_per_writer;
  PDT_ASSIGN_OR_RETURN(
      auto streams,
      MakeUpdateStreams(gen, num_streams, opts.stream_fraction));

  TxnManagerOptions topts;
  topts.write_pdt_max_entries = opts.write_pdt_max_entries;
  topts.merge_chunk_entries = opts.merge_chunk_entries;
  topts.group_commit = true;
  MultiTxnManager mgr({tables->orders, tables->lineitem}, wal, topts);
  if (writer != nullptr) mgr.SetWalWriter(writer);

  const uint64_t orders_before = tables->orders->RowCount();

  // The scenario gate: writers hold it shared per refresh group,
  // readers per query; the maintenance thread takes it exclusively to
  // induce the quiet point a checkpoint requires (see file comment in
  // htap_driver.h).
  std::shared_mutex gate;
  std::atomic<bool> writers_done{false};

  MultiTxnApplyOptions aopts;
  aopts.orders_per_txn = opts.orders_per_txn;
  aopts.max_conflict_retries = opts.max_conflict_retries;
  aopts.orders_table = tables->orders->name();
  aopts.lineitem_table = tables->lineitem->name();

  // --- writer threads: one refresh group per (gated) transaction ---
  std::vector<MultiTxnApplyStats> wstats(opts.writers);
  std::vector<Status> werr(opts.writers, Status::OK());
  Stopwatch total_sw;
  Stopwatch writer_sw;
  std::vector<std::thread> writers;
  writers.reserve(opts.writers);
  for (int w = 0; w < opts.writers; ++w) {
    writers.emplace_back([&, w] {
      for (int s = 0; s < opts.streams_per_writer; ++s) {
        const UpdateStream& stream =
            streams[w * opts.streams_per_writer + s];
        for (const RefreshGroup& g :
             PlanRefreshGroups(stream, opts.orders_per_txn)) {
          std::shared_lock<std::shared_mutex> lock(gate);
          Status st =
              ApplyRefreshGroupMultiTxn(stream, g, &mgr, aopts,
                                        &wstats[w]);
          if (!st.ok()) {
            werr[w] = st;
            return;
          }
        }
      }
    });
  }

  // --- reader threads: cycle the query kernels over direct scans ---
  QueryOptions qopts;
  qopts.num_threads = opts.query_threads;
  std::vector<std::vector<double>> rlat(std::max(opts.readers, 1));
  std::vector<Status> rerr(std::max(opts.readers, 1), Status::OK());
  std::vector<std::thread> readers;
  readers.reserve(opts.readers);
  for (int r = 0; r < opts.readers; ++r) {
    readers.emplace_back([&, r] {
      size_t qi = static_cast<size_t>(r);  // stagger starting kernels
      uint64_t ran = 0;
      while (!writers_done.load(std::memory_order_acquire) ||
             ran < static_cast<uint64_t>(opts.min_queries_per_reader)) {
        const int q = opts.queries[qi++ % opts.queries.size()];
        std::shared_lock<std::shared_mutex> lock(gate);
        const auto t0 = std::chrono::steady_clock::now();
        auto res = RunTpchQuery(q, *tables, qopts);
        if (!res.ok()) {
          rerr[r] = res.status();
          return;
        }
        rlat[r].push_back(std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
        ++ran;
      }
    });
  }

  // --- maintenance: sample layer peaks; fold + checkpoint at induced
  // quiet points, measuring the stall each one imposes ---
  HtapReport report;
  std::atomic<bool> maintenance_failed{false};
  Status merr = Status::OK();
  std::thread maintenance;
  std::mutex peak_mu;
  auto sample_peaks = [&] {
    MultiTxnStats s = mgr.GetStats();
    std::lock_guard<std::mutex> lock(peak_mu);
    for (const MultiTxnTableStats& t : s.tables) {
      report.read_pdt_peak =
          std::max(report.read_pdt_peak, t.read_pdt_entries);
      report.write_pdt_peak =
          std::max(report.write_pdt_peak, t.write_pdt_entries);
      report.merge_pending_peak =
          std::max(report.merge_pending_peak, t.merge_pending_entries);
    }
  };
  if (opts.maintenance_interval_ms > 0) {
    maintenance = std::thread([&] {
      while (!writers_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opts.maintenance_interval_ms));
        sample_peaks();
        std::unique_lock<std::shared_mutex> lock(gate);
        // Exclusive gate => no transaction is in flight and no scan is
        // running: a true quiet point. Fold everything first, then
        // rebuild the stable image if the Read-PDT grew past the bar.
        Stopwatch stall;
        Status st = mgr.PropagateAndMaybeCheckpoint();
        if (!st.ok()) {
          merr = st;
          maintenance_failed.store(true);
          return;
        }
        for (Table* t : {tables->orders, tables->lineitem}) {
          if (t->pdt()->EntryCount() <= opts.checkpoint_read_entries ||
              t->pdt()->Empty()) {
            continue;
          }
          st = t->Checkpoint();
          if (!st.ok()) {
            merr = st;
            maintenance_failed.store(true);
            return;
          }
          if (wal != nullptr) wal->LogCheckpoint(t->name());
          ++report.checkpoints;
        }
        report.checkpoint_stall_ms_max =
            std::max(report.checkpoint_stall_ms_max, stall.ElapsedMillis());
      }
    });
  }

  for (auto& t : writers) t.join();
  report.writer_wall_s = writer_sw.ElapsedSeconds();
  writers_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  if (maintenance.joinable()) maintenance.join();
  sample_peaks();
  report.wall_s = total_sw.ElapsedSeconds();

  for (const Status& st : werr) PDT_RETURN_NOT_OK(st);
  for (const Status& st : rerr) PDT_RETURN_NOT_OK(st);
  PDT_RETURN_NOT_OK(merr);

  // Drain: fold every remaining layer, then verify the final state.
  PDT_RETURN_NOT_OK(mgr.PropagateAndMaybeCheckpoint());
  PDT_RETURN_NOT_OK(tables->orders->pdt()->CheckInvariants());
  PDT_RETURN_NOT_OK(tables->lineitem->pdt()->CheckInvariants());
  // Streams are disjoint and carry equal insert/delete order loads, so
  // the scenario must return orders to its starting row count — any
  // drift means a refresh group was torn or lost.
  if (tables->orders->RowCount() != orders_before) {
    return Status::Internal(
        "HTAP scenario lost or tore a refresh group: orders row count " +
        std::to_string(tables->orders->RowCount()) + " != initial " +
        std::to_string(orders_before));
  }

  // --- report ---
  MultiTxnStats fin = mgr.GetStats();
  report.committed = fin.committed;
  report.aborted = fin.aborted;
  report.wal_syncs = fin.wal_syncs;
  for (const MultiTxnTableStats& t : fin.tables) {
    report.background_merges += t.background_merges;
  }
  for (const MultiTxnApplyStats& s : wstats) {
    report.groups_committed += s.groups_committed;
    report.conflict_retries += s.conflict_retries;
    report.rows_ingested += s.rows_inserted + s.rows_deleted;
  }
  if (report.writer_wall_s > 0) {
    report.ingest_rows_per_sec =
        static_cast<double>(report.rows_ingested) / report.writer_wall_s;
  }
  std::vector<double> all;
  for (const auto& v : rlat) {
    all.insert(all.end(), v.begin(), v.end());
    report.queries_run += v.size();
  }
  if (!all.empty()) {
    report.query_latency.count = all.size();
    report.query_latency.p50_ms = LatencyPercentile(&all, 0.50);
    report.query_latency.p99_ms = LatencyPercentile(&all, 0.99);
    report.query_latency.p999_ms = LatencyPercentile(&all, 0.999);
    report.query_latency.max_ms = all.back();
  }
  return report;
}

}  // namespace tpch
}  // namespace pdtstore

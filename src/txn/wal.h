// Write-ahead log of *logical* update records. The paper (footnote 2)
// notes column stores write a WAL at commit like row stores do — the
// point being that WAL I/O is sequential and does not limit throughput,
// unlike in-place columnar updates. Records are logical (key-addressed)
// so replay works regardless of how positions shifted.
#ifndef PDTSTORE_TXN_WAL_H_
#define PDTSTORE_TXN_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "columnstore/schema.h"
#include "util/status.h"

namespace pdtstore {

/// Kind of a WAL record.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kInsert = 2,
  kDelete = 3,
  kModify = 4,
  kCommit = 5,
  kAbort = 6,
  kCheckpoint = 7,  ///< updates up to this LSN are in the stable image
};

/// One logical WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  std::string table;
  Tuple tuple;              ///< kInsert: the full tuple
  std::vector<Value> key;   ///< kDelete / kModify: the sort key
  ColumnId column = 0;      ///< kModify
  Value value;              ///< kModify
};

/// Append-only log with varint/length-prefixed binary encoding, an
/// in-memory buffer, and optional file persistence. Single-writer.
class Wal {
 public:
  Wal() = default;

  /// Appends a record; returns its LSN (byte offset). The record is
  /// encoded immediately (simulating the sequential WAL write).
  uint64_t Append(const WalRecord& record);

  /// Convenience appenders.
  uint64_t LogBegin(uint64_t txn_id);
  uint64_t LogInsert(uint64_t txn_id, const std::string& table,
                     const Tuple& tuple);
  uint64_t LogDelete(uint64_t txn_id, const std::string& table,
                     const std::vector<Value>& key);
  uint64_t LogModify(uint64_t txn_id, const std::string& table,
                     const std::vector<Value>& key, ColumnId col,
                     const Value& v);
  uint64_t LogCommit(uint64_t txn_id);
  uint64_t LogAbort(uint64_t txn_id);
  uint64_t LogCheckpoint(const std::string& table);

  /// Invokes `fn` for every record in LSN order. Decoding failures abort
  /// the replay with Corruption.
  Status Replay(const std::function<Status(const WalRecord&)>& fn) const;

  /// Drops all records up to the current end (after a checkpoint).
  void Truncate();

  /// Persists the buffer to a file / restores it.
  Status WriteToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  uint64_t SizeBytes() const { return buffer_.size(); }
  size_t RecordCount() const { return record_count_; }

 private:
  std::string buffer_;
  size_t record_count_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_TXN_WAL_H_

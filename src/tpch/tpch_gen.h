// Seeded dbgen-style generator for the TPC-H-like workload. Reproduces
// the structural properties the evaluation depends on: lineitem clustered
// on (orderkey, linenumber) with 1-7 lines per order, orders clustered on
// (orderdate, orderkey) so by-date clustering scatters by-key updates,
// and an orderkey space with holes so refresh inserts land scattered
// throughout both tables (the paper's "inserts touch locations scattered
// throughout the tables").
#ifndef PDTSTORE_TPCH_TPCH_GEN_H_
#define PDTSTORE_TPCH_TPCH_GEN_H_

#include <memory>
#include <vector>

#include "db/database.h"
#include "tpch/tpch_schema.h"
#include "util/random.h"

namespace pdtstore {
namespace tpch {

/// Generator scale: SF 1.0 would be ~1.5M orders / ~6M lineitems; the
/// benchmarks run laptop-scale fractions (see DESIGN.md substitutions).
struct GenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 7;
  /// Fraction of the orderkey space left as holes for refresh inserts
  /// (dbgen uses 8 of every 32 keys).
  double hole_fraction = 0.25;
};

/// The generated tables, loaded into a Database.
struct TpchTables {
  Table* lineitem = nullptr;
  Table* orders = nullptr;
  Table* customer = nullptr;
  Table* part = nullptr;
  Table* supplier = nullptr;
  Table* nation = nullptr;
};

/// One order plus its lineitems, used both for initial population and for
/// refresh-stream inserts.
struct GeneratedOrder {
  Tuple order;
  std::vector<Tuple> lineitems;
};

/// Deterministically generates one order with key `orderkey`.
GeneratedOrder MakeOrder(int64_t orderkey, Random* rng, double scale_factor);

/// Creates + loads all tables into `db` with the given per-table options
/// (backend/compression are the knobs Fig. 19 sweeps).
StatusOr<TpchTables> GenerateInto(Database* db, const GenOptions& gen,
                                  const TableOptions& table_options);

/// Number of orders at a scale factor.
int64_t OrderCountFor(const GenOptions& gen);

}  // namespace tpch
}  // namespace pdtstore

#endif  // PDTSTORE_TPCH_TPCH_GEN_H_

// Batch: the unit of block-oriented (vectorized) processing — a horizontal
// slice of aligned columns, as in X100-style engines the paper builds on.
#ifndef PDTSTORE_COLUMNSTORE_BATCH_H_
#define PDTSTORE_COLUMNSTORE_BATCH_H_

#include <memory>
#include <vector>

#include "columnstore/column_vector.h"
#include "columnstore/schema.h"
#include "util/status.h"

namespace pdtstore {

/// Default number of rows per batch; a few cache pages of values, the
/// sweet spot for vectorized processing.
constexpr size_t kDefaultBatchSize = 1024;

/// A block of rows: aligned typed column vectors plus the RID of the first
/// row. Operators hand Batches down the pipeline.
class Batch {
 public:
  Batch() = default;

  /// Creates an empty batch with one vector per schema column (only the
  /// columns listed in `projection`; empty projection = all).
  static Batch ForSchema(const Schema& schema,
                         const std::vector<ColumnId>& projection = {});

  size_t num_rows() const { return columns_.empty() ? 0 : columns_[0].size(); }
  size_t num_columns() const { return columns_.size(); }

  ColumnVector& column(size_t i) { return columns_[i]; }
  const ColumnVector& column(size_t i) const { return columns_[i]; }

  std::vector<ColumnVector>& columns() { return columns_; }
  const std::vector<ColumnVector>& columns() const { return columns_; }

  /// RID of row 0; row i has RID start_rid + i.
  Rid start_rid() const { return start_rid_; }
  void set_start_rid(Rid rid) { start_rid_ = rid; }

  /// The table-schema column ids this batch's vectors correspond to.
  const std::vector<ColumnId>& column_ids() const { return column_ids_; }
  void set_column_ids(std::vector<ColumnId> ids) {
    column_ids_ = std::move(ids);
  }

  /// Position of table column `cid` within this batch, or -1.
  int IndexOfColumn(ColumnId cid) const;

  /// Approximate heap footprint (sum of the columns' ByteSize) — the
  /// unit the memory budgets charge (util/mem_budget.h).
  size_t ByteSize() const {
    size_t sum = 0;
    for (const ColumnVector& c : columns_) sum += c.ByteSize();
    return sum;
  }

  void Clear();

  /// Resets this batch to `like`'s layout (column types and ids) with
  /// zero rows, reusing existing column storage when the layout already
  /// matches — the allocation-free steady state of a pull loop. Resets
  /// start_rid to 0.
  void ResetLike(const Batch& like);

  /// Materializes row `i` as a Tuple (batch-local column order).
  Tuple RowAsTuple(size_t i) const;

  /// Appends row `i` of `other` (same layout).
  void AppendRow(const Batch& other, size_t i);

  /// Appends rows other[sel[0]], other[sel[1]], ... column-wise (same
  /// layout); one TypeId dispatch per column, not per value.
  void AppendGather(const Batch& other, const SelVector& sel);
  /// Appends every kept row of `other`, column-wise: the bitmap is
  /// expanded to a selection once, then every column gathers through it.
  void AppendFiltered(const Batch& other, const KeepBitmap& keep);
  /// Byte-per-row reference path (tests / bench ablation only).
  void AppendFiltered(const Batch& other, const uint8_t* keep);

 private:
  std::vector<ColumnVector> columns_;
  std::vector<ColumnId> column_ids_;
  Rid start_rid_ = 0;
};

/// Pull-based block-oriented stream of Batches: the engine's operator
/// interface ("next() returns a block of tuples rather than just one",
/// Sec. 3.1). Implemented by scans, merges and executor operators.
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Fills `*out` (replaced) with up to `max_rows` rows. Returns true if
  /// any rows were produced, false at end of stream.
  virtual StatusOr<bool> Next(Batch* out, size_t max_rows) = 0;
};

/// Drains a source into row tuples (tests / examples; O(n) memory).
StatusOr<std::vector<Tuple>> CollectRows(BatchSource* source,
                                         size_t batch_size = kDefaultBatchSize);

}  // namespace pdtstore

#endif  // PDTSTORE_COLUMNSTORE_BATCH_H_

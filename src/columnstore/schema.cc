#include "columnstore/schema.h"

#include <unordered_set>

#include "util/string_util.h"

namespace pdtstore {

Schema::Schema(std::vector<ColumnDef> columns, std::vector<ColumnId> sort_key)
    : columns_(std::move(columns)), sort_key_(std::move(sort_key)) {}

StatusOr<Schema> Schema::Make(std::vector<ColumnDef> columns,
                              std::vector<ColumnId> sort_key) {
  if (columns.empty()) {
    return Status::InvalidArgument("schema needs at least one column");
  }
  if (sort_key.empty()) {
    return Status::InvalidArgument("ordered tables need a sort key");
  }
  std::unordered_set<std::string> names;
  for (const auto& c : columns) {
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column name: " + c.name);
    }
  }
  std::unordered_set<ColumnId> sk;
  for (ColumnId i : sort_key) {
    if (i >= columns.size()) {
      return Status::InvalidArgument("sort key column index out of range");
    }
    if (!sk.insert(i).second) {
      return Status::InvalidArgument("duplicate sort key column");
    }
  }
  return Schema(std::move(columns), std::move(sort_key));
}

StatusOr<ColumnId> Schema::ColumnIndex(const std::string& name) const {
  for (ColumnId i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named " + name);
}

bool Schema::IsSortKeyColumn(ColumnId i) const {
  for (ColumnId k : sort_key_) {
    if (k == i) return true;
  }
  return false;
}

std::vector<Value> Schema::ExtractSortKey(const Tuple& tuple) const {
  std::vector<Value> key;
  key.reserve(sort_key_.size());
  for (ColumnId k : sort_key_) key.push_back(tuple[k]);
  return key;
}

int Schema::CompareSortKey(const Tuple& a, const Tuple& b) const {
  for (ColumnId k : sort_key_) {
    int c = a[k].Compare(b[k]);
    if (c != 0) return c;
  }
  return 0;
}

int Schema::CompareTupleToKey(const Tuple& tuple,
                              const std::vector<Value>& key) const {
  for (size_t i = 0; i < sort_key_.size() && i < key.size(); ++i) {
    int c = tuple[sort_key_[i]].Compare(key[i]);
    if (c != 0) return c;
  }
  return 0;
}

Status Schema::ValidateTuple(const Tuple& tuple) const {
  if (tuple.size() != columns_.size()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple arity %zu does not match schema arity %zu", tuple.size(),
        columns_.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].type() != columns_[i].type) {
      return Status::InvalidArgument(StringPrintf(
          "column %zu (%s): expected %s got %s", i, columns_[i].name.c_str(),
          TypeIdToString(columns_[i].type), TypeIdToString(tuple[i].type())));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::vector<std::string> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    cols.push_back(c.name + ":" + TypeIdToString(c.type));
  }
  std::vector<std::string> sk;
  sk.reserve(sort_key_.size());
  for (ColumnId k : sort_key_) sk.push_back(columns_[k].name);
  return Join(cols, ", ") + " | SK(" + Join(sk, ", ") + ")";
}

}  // namespace pdtstore

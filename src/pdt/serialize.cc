// Algorithm 8: Serialize. Invoked on Tx (the committing transaction's
// PDT) with an *aligned* Ty (an earlier-committed, overlapping
// transaction's serialized PDT): both record updates against the same
// snapshot. On success Tx's SIDs are converted into Ty's RID domain,
// making Tx *consecutive* to Ty (so it can subsequently be Propagate-d),
// and write-write conflicts are reported as Status::Conflict.
//
// Conflict rules (tuple-level write-write, Sec. 3.3):
//   INS-INS with equal sort key            -> key conflict (SK is unique)
//   DEL/MOD in Tx of a tuple Ty deleted    -> conflict
//   DEL in Tx of a tuple Ty modified       -> conflict
//   MOD-MOD of the same column             -> conflict (CheckModConflict);
//     modifications of *different* columns of the same tuple reconcile.
//
// Implementation notes (deviations from the paper's sketch, which has a
// few bookkeeping gaps; see DESIGN.md "Serialize corrections"):
//  * A Ty DEL co-located with Tx inserts is counted into the running
//    delta exactly once — when the scan moves past the SID — not once
//    per co-located Tx insert.
//  * A Ty INS co-located with a Tx MOD/DEL of the stable tuple at that
//    SID contributes to the delta before that MOD/DEL converts (the
//    insert precedes the stable tuple).
//  * MOD-MOD checking compares the Tx modify against *all* Ty modify
//    entries of that tuple (the paper's pairwise loop advances neither
//    cursor on reconcilable column modifies).
//  * We transform a flattened copy and rebuild the tree rather than
//    editing separator keys in place.
#include "pdt/pdt.h"

namespace pdtstore {

Status Pdt::SerializeAgainst(const Pdt& ty) {
  std::vector<UpdateEntry> tx_entries = Flatten();
  const std::vector<UpdateEntry> ty_entries = ty.Flatten();
  const ValueSpace& tx_vs = value_space_;
  const ValueSpace& ty_vs = ty.value_space();

  int64_t delta = 0;
  size_t j = 0;
  const size_t jmax = ty_entries.size();

  for (UpdateEntry& e : tx_entries) {
    const Sid s = e.sid;
    // Consume Ty entries strictly before s.
    while (j < jmax && ty_entries[j].sid < s) {
      delta += DeltaOf(ty_entries[j].type);
      ++j;
    }
    // Interact with Ty entries at the same SID.
    bool converted = false;
    while (!converted) {
      if (j >= jmax || ty_entries[j].sid > s) {
        e.sid = static_cast<Sid>(static_cast<int64_t>(e.sid) + delta);
        converted = true;
        break;
      }
      const UpdateEntry& y = ty_entries[j];
      if (y.type == kTypeIns) {
        if (e.type == kTypeIns) {
          int cmp = ty_vs.CompareInsertKeys(y.value, tx_vs, e.value);
          if (cmp == 0) {
            return Status::Conflict("INS-INS: duplicate sort key");
          }
          if (cmp < 0) {
            // Ty's insert precedes ours: it shifts us right.
            delta += 1;
            ++j;
            continue;
          }
          // Our insert precedes Ty's: convert now, leave j in place.
          e.sid = static_cast<Sid>(static_cast<int64_t>(e.sid) + delta);
          converted = true;
        } else {
          // Ty inserted before the stable tuple at s that Tx touches:
          // the insert shifts the stable tuple right.
          delta += 1;
          ++j;
          continue;
        }
      } else if (y.type == kTypeDel) {
        if (e.type != kTypeIns) {
          // Tx modifies/deletes a tuple Ty already deleted.
          return Status::Conflict("write-write: tuple deleted by peer");
        }
        // Inserts never conflict with a peer delete. Convert with the
        // delta *excluding* this DEL (the insert lands at the ghost's
        // position); the DEL is consumed by the sid<s loop later.
        e.sid = static_cast<Sid>(static_cast<int64_t>(e.sid) + delta);
        converted = true;
      } else {
        // Modify in Ty.
        if (e.type == kTypeIns) {
          // Unrelated: Tx insert before the stable tuple Ty modified.
          e.sid = static_cast<Sid>(static_cast<int64_t>(e.sid) + delta);
          converted = true;
        } else if (e.type == kTypeDel) {
          return Status::Conflict("DEL-MOD: peer modified deleted tuple");
        } else {
          // MOD-MOD: reconcile iff all modified columns are distinct
          // (the paper's CheckModConflict).
          for (size_t k = j;
               k < jmax && ty_entries[k].sid == s &&
               IsModifyType(ty_entries[k].type);
               ++k) {
            if (ty_entries[k].type == e.type) {
              return Status::Conflict("MOD-MOD: same column modified");
            }
          }
          e.sid = static_cast<Sid>(static_cast<int64_t>(e.sid) + delta);
          converted = true;
        }
      }
    }
  }
  // Success: rebuild the tree around the converted entries. The value
  // space is untouched (offsets are stable).
  return BuildFromSorted(tx_entries);
}

}  // namespace pdtstore

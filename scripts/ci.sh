#!/usr/bin/env bash
# Tier-1 verification + benchmark smoke test. Runnable locally or from CI:
#   scripts/ci.sh [build-dir]
# Set PDTSTORE_SKIP_TSAN=1 to skip the ThreadSanitizer stage (e.g. on
# toolchains without TSan).
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== docs check =="
# The docs can't silently rot: README.md must exist (non-empty), DESIGN.md
# must lead with the architecture overview, and every intra-doc anchor
# (DESIGN.md's TOC plus README links into DESIGN.md) must resolve to a
# real heading. Slugs follow the GitHub rule: lowercase, punctuation
# stripped (underscores kept), spaces to hyphens.
[[ -s README.md ]] || { echo "docs check FAILED: README.md missing or empty"; exit 1; }
grep -q '^## Architecture overview' DESIGN.md \
    || { echo "docs check FAILED: DESIGN.md lacks '## Architecture overview'"; exit 1; }
slugs="$(grep -E '^#{1,4} ' DESIGN.md | sed -E 's/^#+ +//' \
    | tr '[:upper:]' '[:lower:]' | sed -E 's/[^a-z0-9_ -]//g; s/ /-/g')"
# `|| true`: a doc legitimately may have no links; grep's no-match exit
# status must not kill the script under set -e before the loop runs.
anchors="$( { grep -oE '\]\(#[A-Za-z0-9_-]+\)' DESIGN.md \
                  | sed -E 's/^\]\(#//; s/\)$//' || true;
              grep -oE '\]\(DESIGN\.md#[A-Za-z0-9_-]+\)' README.md \
                  | sed -E 's/^\]\(DESIGN\.md#//; s/\)$//' || true; } \
            | sort -u)"
docs_ok=1
resolved=0
while IFS= read -r anchor; do
  [[ -z "$anchor" ]] && continue
  if grep -qxF "$anchor" <<<"$slugs"; then
    resolved=$((resolved + 1))
  else
    echo "docs check FAILED: anchor '#$anchor' has no DESIGN.md heading"
    docs_ok=0
  fi
done <<<"$anchors"
[[ "$docs_ok" == 1 ]] || exit 1
echo "docs OK ($resolved anchors resolved)"

echo "== configure =="
cmake -B "$BUILD_DIR" -S .

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== test =="
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

echo "== bench smoke (tiny sizes) =="
"$BUILD_DIR/bench_exec_kernels" --rows=20000 --reps=1 \
    --json="$BUILD_DIR/BENCH_exec_smoke.json"
"$BUILD_DIR/bench_fig17_mergescan_scaling" --sizes=20000 --rates=0,1 \
    --threads=1,2,4 --json="$BUILD_DIR/BENCH_fig17_smoke.json"
"$BUILD_DIR/bench_fig19_tpch" --sf=0.01 --config=uncompressed \
    --threads=1,2,4,8 --json="$BUILD_DIR/BENCH_fig19_smoke.json"
"$BUILD_DIR/bench_wal_group_commit" --txns=800 --threads=1,4 \
    --json="$BUILD_DIR/BENCH_wal.json"
# bench_write_path doubles as the key-loss check: after every workload it
# re-counts the table through a fresh snapshot and aborts if any
# committed insert went missing (lock-free publication + batched fold
# must never drop a record).
"$BUILD_DIR/bench_write_path" --txns=400 --writers=1,2,4,8 \
    --json="$BUILD_DIR/BENCH_write_smoke.json"
# The HTAP scenario is its own key-loss check: the driver verifies that
# equal insert/delete refresh loads return orders to its starting row
# count and fails the run on any torn or lost refresh group. Note: CI
# machines may be single-core, so the reader/writer overlap is
# time-sliced and the latency numbers are upper bounds only.
"$BUILD_DIR/bench_htap" --sf=0.01 --configs=1x2,2x2,4x4 --streams=1 \
    --fraction=0.002 --json="$BUILD_DIR/BENCH_htap_smoke.json"
# Workload-management smoke: all four client fleets (so every committed
# BENCH_workload.json key is produced) over a small table. The binary
# itself fails if any query is lost or rejected with an oversized queue.
"$BUILD_DIR/bench_workload" --queries=64 --clients=1,8,64,256 \
    --rows=50000 --json="$BUILD_DIR/BENCH_workload_smoke.json"

echo "== bench key check =="
# The committed BENCH_exec.json is the record of what the exec benches
# report; a code change must not silently drop an entry (e.g. deleting
# an ablation while its recorded numbers still look current). Every
# bench name in the committed artifact must be produced by the current
# binaries (bench_exec_kernels, plus bench_fig17's parallel_merge_scan
# entry that gets merged in).
produced="$( { grep -o '"name": "[^"]*"' "$BUILD_DIR/BENCH_exec_smoke.json" || true;
               grep -o '"name": "[^"]*"' "$BUILD_DIR/BENCH_fig17_smoke.json" || true; } \
             | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
keys_ok=1
while IFS= read -r name; do
  [[ -z "$name" ]] && continue
  if ! grep -qxF "$name" <<<"$produced"; then
    echo "bench key check FAILED: committed BENCH_exec.json entry '$name'" \
         "is no longer produced by the benches"
    keys_ok=0
  fi
done <<<"$(grep -o '"name": "[^"]*"' BENCH_exec.json \
             | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
# Same contract for the committed write-path artifact: every recorded
# (mode, writer-count) cell must still be produced by bench_write_path.
produced_write="$(grep -o '"name": "[^"]*"' "$BUILD_DIR/BENCH_write_smoke.json" \
                    | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
while IFS= read -r name; do
  [[ -z "$name" ]] && continue
  if ! grep -qxF "$name" <<<"$produced_write"; then
    echo "bench key check FAILED: committed BENCH_write.json entry '$name'" \
         "is no longer produced by bench_write_path"
    keys_ok=0
  fi
done <<<"$(grep -o '"name": "[^"]*"' BENCH_write.json \
             | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
# And for the committed HTAP artifact: every recorded (writers, readers)
# configuration must still be produced by bench_htap's smoke run.
produced_htap="$(grep -o '"name": "[^"]*"' "$BUILD_DIR/BENCH_htap_smoke.json" \
                   | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
while IFS= read -r name; do
  [[ -z "$name" ]] && continue
  if ! grep -qxF "$name" <<<"$produced_htap"; then
    echo "bench key check FAILED: committed BENCH_htap.json entry '$name'" \
         "is no longer produced by bench_htap"
    keys_ok=0
  fi
done <<<"$(grep -o '"name": "[^"]*"' BENCH_htap.json \
             | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
# And for the committed workload artifact: every recorded
# (client-count, shared-scan) cell must still be produced by
# bench_workload's smoke run.
produced_workload="$(grep -o '"name": "[^"]*"' \
                       "$BUILD_DIR/BENCH_workload_smoke.json" \
                       | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
while IFS= read -r name; do
  [[ -z "$name" ]] && continue
  if ! grep -qxF "$name" <<<"$produced_workload"; then
    echo "bench key check FAILED: committed BENCH_workload.json entry '$name'" \
         "is no longer produced by bench_workload"
    keys_ok=0
  fi
done <<<"$(grep -o '"name": "[^"]*"' BENCH_workload.json \
             | sed -E 's/"name": "([^"]*)"/\1/' | sort -u)"
[[ "$keys_ok" == 1 ]] || exit 1
echo "bench keys OK"

# Differential-fuzz provenance: the ctest stage above already ran the
# fixed-seed smoke batch (differential_fuzz_test's default iterations);
# the TSan stage below runs a longer batch from FUZZ_SEED. Record the
# seed in the bench artifact so any CI failure is a one-line repro:
#   PDT_FUZZ_SEED=<seed> PDT_FUZZ_ITERS=1 ./differential_fuzz_test
FUZZ_SEED="${PDT_FUZZ_SEED:-20260731}"
FUZZ_ITERS="${PDT_FUZZ_ITERS:-200}"
# Non-numeric overrides would corrupt the JSON artifact (and silently
# confuse the fuzz binary): fall back to the defaults.
[[ "$FUZZ_SEED" =~ ^[0-9]+$ ]] || FUZZ_SEED=20260731
[[ "$FUZZ_ITERS" =~ ^[0-9]+$ ]] || FUZZ_ITERS=200
# Same provenance scheme for the crash-recovery fuzzer (ASan stage below
# runs CRASH_ITERS seeded iterations); repro:
#   PDT_CRASH_SEED=<seed> PDT_CRASH_ITERS=1 ./crash_recovery_fuzz_test
CRASH_SEED="${PDT_CRASH_SEED:-20260808}"
CRASH_ITERS="${PDT_CRASH_ITERS:-200}"
[[ "$CRASH_SEED" =~ ^[0-9]+$ ]] || CRASH_SEED=20260808
[[ "$CRASH_ITERS" =~ ^[0-9]+$ ]] || CRASH_ITERS=200
cat > "$BUILD_DIR/BENCH_fuzz.json" <<EOF
{"differential_fuzz": {"seed": ${FUZZ_SEED}, "tsan_iters": ${FUZZ_ITERS}},
 "crash_recovery_fuzz": {"seed": ${CRASH_SEED}, "asan_iters": ${CRASH_ITERS}}}
EOF

if [[ "${PDTSTORE_SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tsan build + parallel scan/pipeline/sort/join + fuzz tests =="
  # ThreadSanitizer over the subsystems with cross-thread shared state:
  # exchange queues, the shared process pool, partial-agg merges, the
  # partitioned join build + published table, per-worker sort runs, the
  # buffer pool and shared read-only PDT layers — plus the long
  # differential fuzz batch (FUZZ_ITERS seeded iterations).
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=thread" \
      -DPDTSTORE_BUILD_BENCHES=OFF -DPDTSTORE_BUILD_EXAMPLES=OFF
  # htap_test runs the full HTAP driver (writer/reader/maintenance
  # threads over the multi-table commit chain) at small scale — the
  # densest cross-thread interleaving in the tree, so it belongs here.
  cmake --build "$TSAN_DIR" -j "$(nproc)" \
      --target parallel_scan_test pipeline_test parallel_sort_join_test \
      htap_test differential_fuzz_test workload_stress_test
  (cd "$TSAN_DIR" && \
      ctest --output-on-failure \
          -R "parallel_scan_test|pipeline_test|parallel_sort_join_test|htap_test")
  (cd "$TSAN_DIR" && \
      PDT_FUZZ_SEED="$FUZZ_SEED" PDT_FUZZ_ITERS="$FUZZ_ITERS" \
          ./differential_fuzz_test)
  # The workload stress batch belongs under TSan: 16 driver threads
  # through the admission gate, shared scans merging across queries, and
  # budget charges racing on the shared pool. A smaller batch than the
  # default — TSan's interleaving checks, not query volume, are the
  # point here.
  (cd "$TSAN_DIR" && PDT_WORKLOAD_QUERIES=150 ./workload_stress_test)
fi

if [[ "${PDTSTORE_SKIP_ASAN:-0}" != "1" ]]; then
  echo "== asan build + durability/crash-recovery tests =="
  # AddressSanitizer over the durability path: the WAL frame codec and
  # recovery scanner parse attacker-shaped (torn / bit-flipped) bytes,
  # and the crash fuzzer tears writes at arbitrary offsets — exactly
  # where an out-of-bounds read would hide. CRASH_ITERS seeded
  # iterations of the fuzzer run under ASan.
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMAKE_CXX_FLAGS="-fsanitize=address" \
      -DPDTSTORE_BUILD_BENCHES=OFF -DPDTSTORE_BUILD_EXAMPLES=OFF
  # The compressed-execution suite also runs here: borrowed spans over
  # pool-owned chunk memory and dictionary-code reads are exactly the
  # pointer arithmetic ASan exists to check.
  # memory_budget_test runs here too: budget-triggered teardown paths
  # (aborted sorts, failed join builds, spill restore) free buffers on
  # error edges that the happy path never takes — use-after-free bait.
  cmake --build "$ASAN_DIR" -j "$(nproc)" \
      --target wal_test durability_test crash_recovery_fuzz_test \
      compressed_exec_test memory_budget_test
  (cd "$ASAN_DIR" && \
      ctest --output-on-failure \
          -R "wal_test|durability_test|compressed_exec_test|memory_budget_test")
  (cd "$ASAN_DIR" && \
      PDT_CRASH_SEED="$CRASH_SEED" PDT_CRASH_ITERS="$CRASH_ITERS" \
          ./crash_recovery_fuzz_test)
fi

echo "CI OK"

// TPC-H workload tests: generator determinism and structure, refresh
// streams, and the key evaluation invariant — every query kernel returns
// identical results on PDT-backed, VDT-backed and checkpointed tables
// under the same update load.
#include <gtest/gtest.h>

#include "db/database.h"
#include "tpch/queries.h"
#include "tpch/tpch_gen.h"
#include "tpch/update_stream.h"

namespace pdtstore {
namespace tpch {
namespace {

GenOptions SmallGen() {
  GenOptions gen;
  gen.scale_factor = 0.002;  // ~3000 orders, ~12k lineitems
  gen.seed = 1234;
  return gen;
}

TEST(TpchGenTest, GeneratesClusteredTables) {
  Database db;
  auto tables = GenerateInto(&db, SmallGen(), TableOptions{});
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  EXPECT_EQ(tables->orders->RowCount(),
            static_cast<uint64_t>(OrderCountFor(SmallGen())));
  EXPECT_GT(tables->lineitem->RowCount(), tables->orders->RowCount());
  EXPECT_EQ(tables->nation->RowCount(), 25u);
  // lineitem is SK-ordered on (orderkey, linenumber) by construction; the
  // loader enforces strict order, so loading succeeded <=> clustered.
  // orders clustered by date: sparse index min/max must ascend.
  const auto& entries = tables->orders->sparse_index().entries();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LE(entries[i - 1].max_key[0].AsInt64(),
              entries[i].min_key[0].AsInt64());
  }
}

TEST(TpchGenTest, OrderRegenerationIsDeterministic) {
  GenOptions gen = SmallGen();
  Random r1(gen.seed * 0x9e3779b97f4a7c15ULL + 42);
  Random r2(gen.seed * 0x9e3779b97f4a7c15ULL + 42);
  GeneratedOrder a = MakeOrder(42, &r1, gen.scale_factor);
  GeneratedOrder b = MakeOrder(42, &r2, gen.scale_factor);
  EXPECT_EQ(a.order, b.order);
  ASSERT_EQ(a.lineitems.size(), b.lineitems.size());
  for (size_t i = 0; i < a.lineitems.size(); ++i) {
    EXPECT_EQ(a.lineitems[i], b.lineitems[i]);
  }
}

TEST(UpdateStreamTest, StreamsAreDisjointAndScatter) {
  GenOptions gen = SmallGen();
  auto streams = MakeUpdateStreams(gen, 2, 0.01);
  ASSERT_TRUE(streams.ok());
  ASSERT_EQ(streams->size(), 2u);
  std::set<int64_t> seen;
  for (const auto& s : *streams) {
    EXPECT_GT(s.inserts.size(), 0u);
    EXPECT_GT(s.deletes.size(), 0u);
    for (const auto& o : s.inserts) {
      EXPECT_TRUE(seen.insert(o.order[kOOrderkey].AsInt64()).second);
    }
    for (const auto& o : s.deletes) {
      EXPECT_TRUE(seen.insert(o.order[kOOrderkey].AsInt64()).second);
    }
  }
}

TEST(UpdateStreamTest, ApplyChangesRowCountsAsExpected) {
  Database db;
  auto tables = GenerateInto(&db, SmallGen(), TableOptions{});
  ASSERT_TRUE(tables.ok());
  uint64_t orders_before = tables->orders->RowCount();
  auto streams = MakeUpdateStreams(SmallGen(), 2, 0.01);
  ASSERT_TRUE(streams.ok());
  for (const auto& s : *streams) {
    ASSERT_TRUE(ApplyUpdateStream(s, &*tables).ok());
  }
  // Same number of inserts and deletes: order count is unchanged.
  EXPECT_EQ(tables->orders->RowCount(), orders_before);
  EXPECT_GT(tables->orders->pdt()->EntryCount(), 0u);
  EXPECT_TRUE(tables->orders->pdt()->CheckInvariants().ok());
  EXPECT_TRUE(tables->lineitem->pdt()->CheckInvariants().ok());
}

class TpchQueryTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchQueryTest, BackendsAgreeUnderUpdateLoad) {
  const int q = GetParam();
  GenOptions gen = SmallGen();
  auto streams = MakeUpdateStreams(gen, 2, 0.005);
  ASSERT_TRUE(streams.ok());

  auto run_with = [&](DeltaBackend backend,
                      bool checkpoint) -> QueryResult {
    Database db;
    TableOptions opts;
    opts.backend = backend;
    auto tables = GenerateInto(&db, gen, opts);
    EXPECT_TRUE(tables.ok());
    for (const auto& s : *streams) {
      EXPECT_TRUE(ApplyUpdateStream(s, &*tables).ok());
    }
    if (checkpoint) {
      EXPECT_TRUE(tables->lineitem->Checkpoint().ok());
      EXPECT_TRUE(tables->orders->Checkpoint().ok());
    }
    auto result = RunTpchQuery(q, *tables);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : QueryResult{};
  };

  QueryResult pdt = run_with(DeltaBackend::kPdt, false);
  QueryResult vdt = run_with(DeltaBackend::kVdt, false);
  QueryResult clean = run_with(DeltaBackend::kPdt, true);

  EXPECT_EQ(pdt.rows, vdt.rows) << "q" << q;
  EXPECT_NEAR(pdt.checksum, vdt.checksum,
              1e-6 * (1.0 + std::abs(pdt.checksum)))
      << "q" << q;
  // Checkpointing must not change any result either.
  EXPECT_EQ(pdt.rows, clean.rows) << "q" << q;
  EXPECT_NEAR(pdt.checksum, clean.checksum,
              1e-6 * (1.0 + std::abs(pdt.checksum)))
      << "q" << q;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest,
                         ::testing::Range(1, 23));

TEST(TpchQueryMetaTest, UpdatedTableFootprint) {
  EXPECT_FALSE(QueryTouchesUpdatedTables(2));
  EXPECT_FALSE(QueryTouchesUpdatedTables(11));
  EXPECT_FALSE(QueryTouchesUpdatedTables(16));
  EXPECT_TRUE(QueryTouchesUpdatedTables(1));
  EXPECT_TRUE(QueryTouchesUpdatedTables(6));
  EXPECT_TRUE(QueryTouchesUpdatedTables(22));
}

TEST(TpchQueryMetaTest, UnknownQueryRejected) {
  Database db;
  auto tables = GenerateInto(&db, SmallGen(), TableOptions{});
  ASSERT_TRUE(tables.ok());
  EXPECT_FALSE(RunTpchQuery(0, *tables).ok());
  EXPECT_FALSE(RunTpchQuery(23, *tables).ok());
}

}  // namespace
}  // namespace tpch
}  // namespace pdtstore

// Write-ahead log of *logical* update records. The paper (footnote 2)
// notes column stores write a WAL at commit like row stores do — the
// point being that WAL I/O is sequential and does not limit throughput,
// unlike in-place columnar updates. Records are logical (key-addressed)
// so replay works regardless of how positions shifted.
//
// On-disk format (v2): every record is one self-checking frame
//
//   [u32 payload_len][u32 crc32c(lsn || payload)][u64 lsn][payload]
//
// with the LSN equal to the frame's byte offset in the log, so a frame
// also proves it sits where it was written. Recovery distinguishes two
// corruption shapes: a bad or incomplete frame that reaches the end of
// the log is a *torn tail* — the expected residue of a crash mid-append
// — and is truncated away, recovering the committed prefix; a bad frame with
// valid data after it is mid-log corruption and is reported as
// Corruption, never silently dropped. The self-proving LSN is what makes
// the distinction decidable even when a corrupt length field hides the
// next frame boundary: recovery rescans for any intact frame sitting at
// its claimed offset, and only calls the damage a tail if none exists.
#ifndef PDTSTORE_TXN_WAL_H_
#define PDTSTORE_TXN_WAL_H_

#include <condition_variable>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "columnstore/schema.h"
#include "util/file.h"
#include "util/status.h"

namespace pdtstore {

/// Kind of a WAL record.
enum class WalRecordType : uint8_t {
  kBegin = 1,
  kInsert = 2,
  kDelete = 3,
  kModify = 4,
  kCommit = 5,
  kAbort = 6,
  kCheckpoint = 7,  ///< updates up to this LSN are in the stable image
};

/// One logical WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  uint64_t txn_id = 0;
  std::string table;
  Tuple tuple;              ///< kInsert: the full tuple
  std::vector<Value> key;   ///< kDelete / kModify: the sort key
  ColumnId column = 0;      ///< kModify
  Value value;              ///< kModify
};

/// Append-only sink for framed WAL bytes: a WritableFile opened in
/// append mode plus an explicit Sync() — the durability point commits
/// wait on. Counts fsyncs so the group-commit ablation can report
/// syncs-per-transaction honestly.
class WalWriter {
 public:
  static StatusOr<std::unique_ptr<WalWriter>> Open(FileSystem* fs,
                                                   const std::string& path,
                                                   bool truncate = false);

  Status Append(std::string_view bytes);
  Status Sync();

  // Atomic: monitor threads (shell .stats, the HTAP driver's report)
  // poll this while committers sync.
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path)
      : file_(std::move(file)), path_(std::move(path)) {}

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  std::atomic<uint64_t> sync_count_{0};
};

/// What loading a WAL segment from disk found.
struct WalRecoveryStats {
  uint64_t valid_bytes = 0;   ///< bytes of intact committed frames
  size_t records = 0;         ///< records in the valid prefix
  bool tail_truncated = false;  ///< a torn tail was cut off
};

/// The logical log: an in-memory buffer of checksummed frames, appended
/// at commit and flushed/synced through a WalWriter. Thread-safe: several
/// per-table transaction managers may share one log, so appends and the
/// flush bookkeeping are internally synchronized, and the group-commit
/// protocol (SyncTo) lives here — durability state must be shared by
/// everyone writing the same file, or one manager could acknowledge a
/// commit on the strength of another manager's not-yet-synced flush.
class Wal {
 public:
  Wal() = default;

  /// Appends a record as one frame; returns its LSN (byte offset). The
  /// record is encoded immediately (the sequential WAL write); file
  /// flushing is explicit and separate.
  uint64_t Append(const WalRecord& record);

  /// Encodes a record's logical payload (everything but the frame
  /// header) without touching any log. Byte-identical to what Append
  /// would write, so a committer can do the value encoding — the bulk
  /// of the append cost — outside every lock and hand the finished
  /// payloads to AppendEncoded under the commit critical section.
  static std::string EncodeRecordPayload(const WalRecord& record);

  /// Appends pre-encoded payloads (from EncodeRecordPayload) as
  /// consecutive frames under one buffer-lock acquisition; LSNs and
  /// frame CRCs are assigned here, where the offsets become known.
  /// Returns the log size the frames extend to (the batch's durability
  /// target for SyncTo).
  uint64_t AppendEncoded(const std::vector<std::string>& payloads);

  /// Convenience appenders.
  uint64_t LogBegin(uint64_t txn_id);
  uint64_t LogInsert(uint64_t txn_id, const std::string& table,
                     const Tuple& tuple);
  uint64_t LogDelete(uint64_t txn_id, const std::string& table,
                     const std::vector<Value>& key);
  uint64_t LogModify(uint64_t txn_id, const std::string& table,
                     const std::vector<Value>& key, ColumnId col,
                     const Value& v);
  uint64_t LogCommit(uint64_t txn_id);
  uint64_t LogAbort(uint64_t txn_id);
  uint64_t LogCheckpoint(const std::string& table);

  /// Invokes `fn` for every record in LSN order, verifying every frame
  /// checksum. Strict: any corruption (including a torn tail) aborts
  /// with Corruption.
  Status Replay(const std::function<Status(const WalRecord&)>& fn) const;

  /// Drops all records up to the current end. Only legal after every
  /// buffered record was absorbed into a durable checkpoint. Blocks
  /// until in-flight SyncTo waits have drained, so no committer is left
  /// waiting on an offset the truncation erased (and the writer can be
  /// swapped safely afterwards).
  void Truncate();

  /// Persists the whole buffer to a file / restores it (strict — no
  /// tail tolerance; recovery uses RecoverFrom).
  Status WriteToFile(const std::string& path,
                     FileSystem* fs = nullptr) const;
  Status LoadFromFile(const std::string& path, FileSystem* fs = nullptr);

  /// Crash-recovery load: reads the segment at `path`, accepts the
  /// longest intact frame prefix, truncates a torn tail both in memory
  /// and on disk (so later appends land at the right offset), and
  /// reports mid-log corruption as Corruption. A missing file is an
  /// empty log.
  StatusOr<WalRecoveryStats> RecoverFrom(FileSystem* fs,
                                         const std::string& path);

  // --- durability (group commit) ---

  /// Attaches (or swaps) the durable sink SyncTo flushes through. The
  /// writer lives here, not in the per-table managers, so a swap cannot
  /// race an in-flight flush: SetWriter blocks until no flush is using
  /// the old writer. Call with the log quiet or freshly truncated.
  void SetWriter(WalWriter* writer);
  bool has_writer() const;

  /// Blocks until the log is durable through offset `upto`: the first
  /// waiter becomes the flush leader, appends and fsyncs the whole
  /// unflushed suffix once, and every committer waiting at that moment
  /// rides on the same fsync. A flush or fsync failure is sticky (see
  /// health()): once durability cannot be promised, every later SyncTo
  /// fails with the same status. If the log was truncated after `upto`
  /// was handed out (a checkpoint absorbed those frames and committed
  /// durably before dropping them), SyncTo returns OK — the records are
  /// durable via the checkpoint, not this segment's fsync.
  Status SyncTo(uint64_t upto);

  /// The sticky durability status: OK until a flush or fsync failed.
  Status health() const;

  /// Marks everything currently buffered as flushed AND durable (bytes
  /// just loaded from disk), and clears the sticky health status. Only
  /// valid at a quiet point — no commit in flight.
  void MarkAllFlushed();
  uint64_t flushed_bytes() const;

  /// Returns the framed bytes appended since the last take and marks
  /// them flushed; `*end_offset` receives the log size they extend to.
  /// (Exposed for tests; SyncTo is the production path.)
  std::string TakeUnflushed(uint64_t* end_offset);

  uint64_t SizeBytes() const;
  size_t RecordCount() const;

 private:
  // Frames one payload at the current end of the buffer. Caller holds mu_.
  uint64_t AppendPayloadLocked(const std::string& payload);

  // Buffer state. Held only for short, non-blocking operations.
  mutable std::mutex mu_;
  std::string buffer_;
  size_t record_count_ = 0;
  uint64_t flushed_bytes_ = 0;

  // Durability state, under its own lock so committers can wait for an
  // fsync without stalling appends. Lock order: flush_mu_ before mu_
  // (quiet-point ops hold both); the flush leader drops flush_mu_
  // before taking mu_ to grab the unflushed suffix, so it never holds
  // both, and Append takes only mu_.
  mutable std::mutex flush_mu_;
  std::condition_variable flush_cv_;
  WalWriter* writer_ = nullptr;  ///< stable while flushing_ is set
  uint64_t durable_bytes_ = 0;
  bool flushing_ = false;
  size_t sync_waiters_ = 0;  ///< SyncTo calls in flight (Truncate drains)
  Status health_ = Status::OK();
};

}  // namespace pdtstore

#endif  // PDTSTORE_TXN_WAL_H_

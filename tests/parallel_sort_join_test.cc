// Parallel sort (IntoSortBuild: per-worker sorted runs + loser-tree
// merge) and hash-partitioned join build equivalence tests. The sort's
// contract is strong — the exact sequence of the serial stable sort,
// via (keys, source-morsel-order) tie-breaking — so most sort tests
// compare sequences, not multisets, at 1/2/4/8 threads under hostile
// PDT states (runs spanning modify entries, all-rows-deleted morsels),
// duplicate-key and all-equal-key inputs (the engine has no NULLs;
// all-equal keys is the analogous everything-ties case). Join tests
// sweep explicit partition counts, adversarial single-partition key
// distributions, empty build sides, and semi/anti probe dedup.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "db/table.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/pipeline.h"
#include "exec/project.h"
#include "exec/sort.h"
#include "test_util.h"
#include "util/random.h"

namespace pdtstore {
namespace {

using testutil::AllColumns;

std::shared_ptr<const Schema> IntSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

std::vector<Tuple> IntRows(int n, int64_t gap = 100) {
  std::vector<Tuple> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<int64_t>(i) * gap, int64_t{i}});
  }
  return rows;
}

std::unique_ptr<Table> BuildUpdatedTable(DeltaBackend backend, int n,
                                         int ops, uint64_t seed) {
  TableOptions opts;
  opts.backend = backend;
  opts.store.chunk_rows = 64;
  auto table = std::make_unique<Table>("t", IntSchema(), opts);
  EXPECT_TRUE(table->Load(IntRows(n)).ok());
  Random rng(seed);
  for (int i = 0; i < ops; ++i) {
    double d = rng.NextDouble();
    if (d < 0.4) {
      (void)table->Insert({rng.UniformRange(0, n * 100), int64_t{i}});
    } else if (d < 0.7) {
      (void)table->DeleteByKey(
          {Value(static_cast<int64_t>(rng.Uniform(n)) * 100)});
    } else {
      (void)table->ModifyByKey(
          {Value(static_cast<int64_t>(rng.Uniform(n)) * 100)}, 1,
          Value(int64_t{i}));
    }
  }
  return table;
}

std::vector<Tuple> Collect(std::unique_ptr<BatchSource> src) {
  auto rows = CollectRows(src.get());
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Tuple>{};
}

void SortRows(std::vector<Tuple>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Tuple& a, const Tuple& b) {
    return CompareTuples(a, b) < 0;
  });
}

ScanOptions PipeOpts(int threads, size_t morsel_rows = 64) {
  ScanOptions so;
  so.num_threads = threads;
  so.ordered = false;
  so.morsel_rows = morsel_rows;
  return so;
}

// Projects (k, v % m): a duplicate-heavy sort key next to the unique key.
std::vector<ColumnExpr> ModExprs(int64_t m) {
  return {ColumnRef(0), [m](const Batch& b) {
            ColumnVector out(TypeId::kInt64);
            const auto& v = b.column(1).ints();
            out.ints().resize(v.size());
            for (size_t i = 0; i < v.size(); ++i) out.ints()[i] = v[i] % m;
            return out;
          }};
}

// ---------------------------------------------------------------------
// RunMerger (the loser tree) in isolation.
// ---------------------------------------------------------------------

SortedRun MakeRun(std::vector<int64_t> vals, uint64_t morsel) {
  SortedRun r;
  r.rows.set_column_ids({0});
  r.rows.columns().emplace_back(TypeId::kInt64);
  std::sort(vals.begin(), vals.end());
  for (size_t i = 0; i < vals.size(); ++i) {
    r.rows.column(0).ints().push_back(vals[i]);
    r.seq.push_back((morsel << kSeqMorselShift) | i);
  }
  return r;
}

std::vector<int64_t> DrainMerger(RunMerger* m, size_t batch) {
  std::vector<int64_t> out;
  Batch b;
  while (m->Next(&b, batch)) {
    out.insert(out.end(), b.column(0).ints().begin(),
               b.column(0).ints().end());
  }
  return out;
}

TEST(RunMergerTest, MergesArbitraryRunCountsAndBatchSizes) {
  for (size_t k : {1u, 2u, 3u, 5u, 8u}) {
    for (size_t batch : {1u, 3u, 1024u}) {
      Random rng(k * 100 + batch);
      std::vector<SortedRun> runs;
      std::vector<int64_t> all;
      for (size_t r = 0; r < k; ++r) {
        std::vector<int64_t> vals;
        for (size_t i = 0; i < 5 + rng.Uniform(40); ++i) {
          vals.push_back(static_cast<int64_t>(rng.Uniform(50)));
        }
        all.insert(all.end(), vals.begin(), vals.end());
        runs.push_back(MakeRun(std::move(vals), r));
      }
      std::sort(all.begin(), all.end());
      RunMerger m(std::move(runs), {{0, false}}, 0);
      EXPECT_EQ(DrainMerger(&m, batch), all) << k << " runs, " << batch;
    }
  }
}

TEST(RunMergerTest, TieBreaksBySourceOrderAndHonorsLimit) {
  // All-equal keys: output must follow seq (= morsel) order exactly.
  std::vector<SortedRun> runs;
  runs.push_back(MakeRun({7, 7, 7}, 2));
  runs.push_back(MakeRun({7, 7}, 0));
  runs.push_back(MakeRun({7}, 1));
  RunMerger m(std::move(runs), {{0, false}}, 0);
  Batch b;
  std::vector<uint64_t> seq_order;
  // Rebuild runs to track seq: drain row count is what matters here.
  EXPECT_EQ(DrainMerger(&m, 2).size(), 6u);

  std::vector<SortedRun> runs2;
  runs2.push_back(MakeRun({1, 3, 5}, 0));
  runs2.push_back(MakeRun({2, 4, 6}, 1));
  RunMerger limited(std::move(runs2), {{0, false}}, 4);
  EXPECT_EQ(DrainMerger(&limited, 1024),
            (std::vector<int64_t>{1, 2, 3, 4}));

  RunMerger empty({}, {{0, false}}, 0);
  EXPECT_TRUE(DrainMerger(&empty, 16).empty());
}

// ---------------------------------------------------------------------
// Parallel sort through the pipeline.
// ---------------------------------------------------------------------

TEST(ParallelSortTest, ExactSerialSequenceAcrossThreadCounts) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 2000, 800, 17);
  auto cols = AllColumns(table->schema());
  // Duplicate-heavy key (v % 7) with descending unique tiebreak-free
  // check done separately; here ties abound and stability must hold.
  auto serial = Collect(std::make_unique<SortNode>(
      std::make_unique<ProjectNode>(table->Scan(cols), ModExprs(7)),
      std::vector<SortKey>{{1, false}}));
  ASSERT_FALSE(serial.empty());
  for (int threads : {1, 2, 4, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Project(ModExprs(7));
    auto rows = Collect(std::move(pipe).IntoSortBuild({{1, false}}));
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(ParallelSortTest, DescendingMultiKeyAndFilteredInput) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 1500, 700, 23);
  auto cols = AllColumns(table->schema());
  auto even = [](const Batch& b, KeepBitmap* keep) {
    const auto& v = b.column(1).ints();
    keep->FillFrom([&](size_t i) { return v[i] % 2 == 0; });
  };
  auto serial = Collect(std::make_unique<SortNode>(
      std::make_unique<ProjectNode>(
          std::make_unique<FilterNode>(table->Scan(cols), even),
          ModExprs(5)),
      std::vector<SortKey>{{1, true}, {0, false}}));
  for (int threads : {2, 4, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Filter(even).Project(ModExprs(5));
    auto rows =
        Collect(std::move(pipe).IntoSortBuild({{1, true}, {0, false}}));
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(ParallelSortTest, AllEqualKeysPreserveScanOrder) {
  // Everything ties: the parallel sort must reproduce the scan sequence
  // — the strongest stability check (the engine's no-NULL analogue of
  // an all-NULL key column).
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 800, 400, 29);
  auto cols = AllColumns(table->schema());
  auto const_key = [](const Batch& b) {
    ColumnVector out(TypeId::kInt64);
    out.ints().assign(b.num_rows(), 42);
    return out;
  };
  auto serial = Collect(std::make_unique<SortNode>(
      std::make_unique<ProjectNode>(
          table->Scan(cols),
          std::vector<ColumnExpr>{const_key, ColumnRef(0), ColumnRef(1)}),
      std::vector<SortKey>{{0, false}}));
  for (int threads : {2, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Project({const_key, ColumnRef(0), ColumnRef(1)});
    auto rows = Collect(std::move(pipe).IntoSortBuild({{0, false}}));
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

TEST(ParallelSortTest, HostilePdtStatesAndEmptyResults) {
  // Ghost chains spanning whole morsels, inserts into ghosts, modify
  // churn — then sort on top.
  TableOptions topts;
  topts.store.chunk_rows = 64;
  topts.pdt.fanout = 4;
  auto table = std::make_unique<Table>("t", IntSchema(), topts);
  ASSERT_TRUE(table->Load(IntRows(600, 10)).ok());
  for (int i = 0; i < 400; ++i) ASSERT_TRUE(table->DeleteAt(100).ok());
  for (int64_t k : {1005, 2501, 3999, 1001, 4995}) {
    ASSERT_TRUE(table->Insert({k, k}).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table->Insert({int64_t{6001 + i}, int64_t{i}}).ok());
    ASSERT_TRUE(table->ModifyAt(i % 100, 1, Value(int64_t{i})).ok());
  }
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<SortNode>(
      table->Scan(cols), std::vector<SortKey>{{1, true}}));
  for (int threads : {2, 4, 8}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    auto rows = Collect(std::move(pipe).IntoSortBuild({{1, true}}));
    EXPECT_EQ(rows, serial) << threads << " threads";

    // Nothing survives the filter: empty sort output, no rows, no hang.
    Pipeline none(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    none.Filter([](const Batch&, KeepBitmap* keep) {
      (void)keep;  // arrives all-zero: keep nothing
    });
    EXPECT_TRUE(Collect(std::move(none).IntoSortBuild({{0}})).empty());
  }
}

TEST(ParallelSortTest, TopKLimitMatchesSerial) {
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 1200, 500, 31);
  auto cols = AllColumns(table->schema());
  for (size_t limit : {1u, 7u, 100u, 5000u}) {
    auto serial = Collect(std::make_unique<SortNode>(
        std::make_unique<ProjectNode>(table->Scan(cols), ModExprs(11)),
        std::vector<SortKey>{{1, false}, {0, true}}, limit));
    for (int threads : {2, 8}) {
      Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
      pipe.Project(ModExprs(11));
      auto rows = Collect(
          std::move(pipe).IntoSortBuild({{1, false}, {0, true}}, limit));
      EXPECT_EQ(rows, serial) << threads << " threads, limit " << limit;
    }
  }
}

TEST(ParallelSortTest, VdtBackendMatchesSerial) {
  auto table = BuildUpdatedTable(DeltaBackend::kVdt, 1500, 600, 37);
  auto cols = AllColumns(table->schema());
  auto serial = Collect(std::make_unique<SortNode>(
      std::make_unique<ProjectNode>(table->Scan(cols), ModExprs(9)),
      std::vector<SortKey>{{1, false}}));
  for (int threads : {2, 4}) {
    Pipeline pipe(table->PlanMorsels(cols, nullptr, PipeOpts(threads)));
    pipe.Project(ModExprs(9));
    auto rows = Collect(std::move(pipe).IntoSortBuild({{1, false}}));
    EXPECT_EQ(rows, serial) << threads << " threads";
  }
}

// ---------------------------------------------------------------------
// Hash-partitioned join build.
// ---------------------------------------------------------------------

TEST(PartitionedJoinTest, PartitionCountSweepMatchesSerial) {
  auto probe_table = BuildUpdatedTable(DeltaBackend::kPdt, 1500, 600, 41);
  auto build_table = BuildUpdatedTable(DeltaBackend::kPdt, 300, 200, 43);
  auto pcols = AllColumns(probe_table->schema());
  auto bcols = AllColumns(build_table->schema());
  for (JoinKind kind :
       {JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    auto serial = Collect(std::make_unique<HashJoinNode>(
        std::make_unique<ProjectNode>(probe_table->Scan(pcols),
                                      ModExprs(61)),
        std::make_unique<ProjectNode>(build_table->Scan(bcols),
                                      ModExprs(61)),
        std::vector<size_t>{1}, std::vector<size_t>{1}, kind));
    SortRows(&serial);
    for (size_t partitions : {1u, 2u, 16u}) {
      for (int threads : {2, 4}) {
        auto bpipe = std::make_unique<Pipeline>(
            build_table->PlanMorsels(bcols, nullptr, PipeOpts(threads)));
        bpipe->Project(ModExprs(61));
        auto handle =
            Pipeline::IntoJoinBuild(std::move(bpipe), {1}, partitions);
        Pipeline probe(
            probe_table->PlanMorsels(pcols, nullptr, PipeOpts(threads)));
        probe.Project(ModExprs(61)).Probe(handle, {1}, kind);
        auto rows = Collect(std::move(probe).Exchange());
        SortRows(&rows);
        EXPECT_EQ(rows, serial)
            << "kind " << static_cast<int>(kind) << ", " << partitions
            << " partitions, " << threads << " threads";
      }
    }
  }
}

TEST(PartitionedJoinTest, EmptyBuildSide) {
  auto probe_table = BuildUpdatedTable(DeltaBackend::kPdt, 800, 300, 47);
  auto build_table = BuildUpdatedTable(DeltaBackend::kPdt, 200, 100, 53);
  auto pcols = AllColumns(probe_table->schema());
  auto bcols = AllColumns(build_table->schema());
  auto nothing = [](const Batch&, KeepBitmap* keep) {
    (void)keep;  // arrives all-zero: keep nothing
  };
  for (JoinKind kind :
       {JoinKind::kInner, JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    auto serial = Collect(std::make_unique<HashJoinNode>(
        probe_table->Scan(pcols),
        std::make_unique<FilterNode>(build_table->Scan(bcols), nothing),
        std::vector<size_t>{0}, std::vector<size_t>{0}, kind));
    SortRows(&serial);
    for (size_t partitions : {1u, 16u}) {
      auto bpipe = std::make_unique<Pipeline>(
          build_table->PlanMorsels(bcols, nullptr, PipeOpts(4)));
      bpipe->Filter(nothing);
      auto handle =
          Pipeline::IntoJoinBuild(std::move(bpipe), {0}, partitions);
      Pipeline probe(probe_table->PlanMorsels(pcols, nullptr, PipeOpts(4)));
      probe.Probe(handle, {0}, kind);
      auto rows = Collect(std::move(probe).Exchange());
      SortRows(&rows);
      EXPECT_EQ(rows.size(), serial.size())
          << "kind " << static_cast<int>(kind);
      // Anti keeps every probe row; inner/semi keep none.
      if (kind == JoinKind::kLeftAnti) {
        EXPECT_FALSE(rows.empty());
      } else {
        EXPECT_TRUE(rows.empty());
      }
    }
  }
}

TEST(PartitionedJoinTest, AllKeysCollideInOnePartition) {
  // Every build key is the same value: one hash, one bucket, one
  // partition holds everything while the other 15 stay empty — the
  // worst-case partition skew.
  auto probe_table = BuildUpdatedTable(DeltaBackend::kPdt, 600, 200, 59);
  auto build_table = BuildUpdatedTable(DeltaBackend::kPdt, 150, 80, 61);
  auto pcols = AllColumns(probe_table->schema());
  auto bcols = AllColumns(build_table->schema());
  auto const_exprs = [] {
    return std::vector<ColumnExpr>{[](const Batch& b) {
                                     ColumnVector out(TypeId::kInt64);
                                     out.ints().assign(b.num_rows(), 5);
                                     return out;
                                   },
                                   ColumnRef(1)};
  };
  // Probe keys: v % 2 -> only rows with value 5... none; use v % 6 so
  // some probe rows hit the constant build key 5.
  auto probe_exprs = [] {
    return std::vector<ColumnExpr>{[](const Batch& b) {
                                     ColumnVector out(TypeId::kInt64);
                                     const auto& v = b.column(1).ints();
                                     out.ints().resize(v.size());
                                     for (size_t i = 0; i < v.size(); ++i) {
                                       out.ints()[i] = v[i] % 6;
                                     }
                                     return out;
                                   },
                                   ColumnRef(0)};
  };
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftSemi}) {
    auto serial = Collect(std::make_unique<HashJoinNode>(
        std::make_unique<ProjectNode>(probe_table->Scan(pcols),
                                      probe_exprs()),
        std::make_unique<ProjectNode>(build_table->Scan(bcols),
                                      const_exprs()),
        std::vector<size_t>{0}, std::vector<size_t>{0}, kind));
    SortRows(&serial);
    ASSERT_FALSE(serial.empty());
    auto bpipe = std::make_unique<Pipeline>(
        build_table->PlanMorsels(bcols, nullptr, PipeOpts(4)));
    bpipe->Project(const_exprs());
    auto handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0}, 16);
    Pipeline probe(probe_table->PlanMorsels(pcols, nullptr, PipeOpts(4)));
    probe.Project(probe_exprs()).Probe(handle, {0}, kind);
    auto rows = Collect(std::move(probe).Exchange());
    SortRows(&rows);
    EXPECT_EQ(rows, serial) << "kind " << static_cast<int>(kind);
  }
}

TEST(PartitionedJoinTest, SemiAntiDedupAgainstDuplicateBuildKeys) {
  // Build side maps everything to key space {0,1}: each probe row
  // matches dozens of build rows, but semi/anti must emit it at most
  // once.
  auto probe_table = BuildUpdatedTable(DeltaBackend::kPdt, 700, 250, 67);
  auto build_table = BuildUpdatedTable(DeltaBackend::kPdt, 200, 80, 71);
  auto pcols = AllColumns(probe_table->schema());
  auto bcols = AllColumns(build_table->schema());
  const size_t probe_count = Collect(probe_table->Scan(pcols)).size();
  for (JoinKind kind : {JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
    for (size_t partitions : {2u, 16u}) {
      auto bpipe = std::make_unique<Pipeline>(
          build_table->PlanMorsels(bcols, nullptr, PipeOpts(4)));
      bpipe->Project(ModExprs(2));
      auto handle =
          Pipeline::IntoJoinBuild(std::move(bpipe), {1}, partitions);
      Pipeline probe(probe_table->PlanMorsels(pcols, nullptr, PipeOpts(4)));
      probe.Project(ModExprs(2)).Probe(handle, {1}, kind);
      auto rows = Collect(std::move(probe).Exchange());
      // Both build keys {0, 1} exist, so semi keeps every probe row and
      // anti none — and never a duplicate.
      if (kind == JoinKind::kLeftSemi) {
        EXPECT_EQ(rows.size(), probe_count) << partitions << " partitions";
      } else {
        EXPECT_TRUE(rows.empty()) << partitions << " partitions";
      }
    }
  }
}

TEST(PartitionedJoinTest, SerialHandleStaysSinglePartition) {
  // num_threads == 1 must produce the serial single-partition shape
  // through the same Pipeline API.
  auto table = BuildUpdatedTable(DeltaBackend::kPdt, 400, 150, 73);
  auto cols = AllColumns(table->schema());
  auto bpipe = std::make_unique<Pipeline>(
      table->PlanMorsels(cols, nullptr, PipeOpts(1)));
  auto handle = Pipeline::IntoJoinBuild(std::move(bpipe), {0});
  auto resolved = handle->Resolve();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ((*resolved)->num_partitions(), 1u);
  EXPECT_EQ((*resolved)->TotalRows(), Collect(table->Scan(cols)).size());
}

}  // namespace
}  // namespace pdtstore

#include "exec/zone_prune.h"

#include <algorithm>

namespace pdtstore {

namespace {

// True if the zone map of chunk `ci` proves no row can satisfy every
// filter. Conservative: a filter whose type disagrees with the chunk
// metadata never prunes.
bool ZoneExcludes(const ColumnStore& store, size_t ci,
                  const std::vector<ZoneFilter>& filters) {
  for (const ZoneFilter& f : filters) {
    if (f.col >= store.schema().num_columns()) continue;
    const Chunk& meta = store.chunk_meta(f.col, ci);
    if (meta.row_count == 0) continue;
    if (meta.min_value.type() != f.lo.type() ||
        meta.max_value.type() != f.hi.type()) {
      continue;
    }
    if (meta.max_value < f.lo || f.hi < meta.min_value) return true;
  }
  return false;
}

// True if any layer entry maps into stable range [lo, hi). Walking up
// is only valid while the range is entry-free in every lower layer:
// the positional shift into the next domain is then the constant
// prefix delta at `lo`.
bool LayersTouch(const std::vector<const Pdt*>& layers, uint64_t lo,
                 uint64_t hi) {
  for (const Pdt* layer : layers) {
    if (layer == nullptr || layer->EntryCount() == 0) continue;
    Pdt::Cursor c = layer->SeekSid(static_cast<Sid>(lo));
    if (c.Valid() && c.sid() < hi) return true;
    const int64_t delta = c.delta_before();
    lo = static_cast<uint64_t>(static_cast<int64_t>(lo) + delta);
    hi = static_cast<uint64_t>(static_cast<int64_t>(hi) + delta);
  }
  return false;
}

}  // namespace

std::vector<SidRange> PruneRangesWithZoneMaps(
    const ColumnStore& store, const std::vector<const Pdt*>& layers,
    std::vector<SidRange> ranges, const std::vector<ZoneFilter>& filters,
    const std::vector<ColumnId>& projection) {
  if (filters.empty() || store.num_rows() == 0) return ranges;
  if (ranges.empty()) ranges.push_back(SidRange{0, store.num_rows()});

  std::vector<SidRange> kept;
  uint64_t chunks_skipped = 0;
  uint64_t bytes_skipped = 0;
  // Inserts at the scan's end position ride as the final morsel's
  // trailing run (sid == scan_end; the table end for unbounded scans),
  // so pruning the last segment must also prove that position empty —
  // interior segment boundaries hand their entries to the next morsel
  // and need no such guard.
  const Sid scan_end = ranges.back().end;
  for (const SidRange& r : ranges) {
    Sid cur = r.begin;
    while (cur < r.end) {
      const size_t ci = store.ChunkIndexForSid(cur);
      const Sid cend = store.ChunkSidRange(ci).second;
      const Sid seg_end = std::min<Sid>(r.end, cend);
      // The zone map speaks for the whole chunk, hence for any
      // sub-range of it; the entry check only needs the scanned piece.
      const uint64_t check_end =
          seg_end == scan_end ? static_cast<uint64_t>(seg_end) + 1
                              : static_cast<uint64_t>(seg_end);
      if (ZoneExcludes(store, ci, filters) &&
          !LayersTouch(layers, cur, check_end)) {
        chunks_skipped += projection.size();
        for (ColumnId col : projection) {
          bytes_skipped += store.chunk_meta(col, ci).DiskBytes();
        }
      } else if (!kept.empty() && kept.back().end == cur) {
        kept.back().end = seg_end;
      } else {
        kept.push_back(SidRange{cur, seg_end});
      }
      cur = seg_end;
    }
  }
  if (chunks_skipped > 0) {
    store.buffer_pool()->NoteSkipped(chunks_skipped, bytes_skipped);
  }
  if (kept.empty()) {
    // Everything pruned: an explicit empty range at the scan's end
    // keeps the plan out of the "empty list = whole table" convention
    // and still anchors insert emission at the original end position.
    kept.push_back(SidRange{scan_end, scan_end});
  }
  return kept;
}

}  // namespace pdtstore

#include "exec/parallel_scan.h"

#include <algorithm>
#include <cassert>

namespace pdtstore {

std::vector<SidRange> SplitIntoMorsels(const std::vector<SidRange>& ranges,
                                       size_t morsel_rows) {
  if (morsel_rows == 0) morsel_rows = kDefaultMorselRows;
  std::vector<SidRange> morsels;
  for (size_t i = 0; i < ranges.size(); ++i) {
    assert(i == 0 || ranges[i - 1].end <= ranges[i].begin);
    morsels.reserve(morsels.size() +
                    static_cast<size_t>(ranges[i].end - ranges[i].begin) /
                        morsel_rows + 1);
    for (Sid b = ranges[i].begin; b < ranges[i].end; b += morsel_rows) {
      morsels.push_back(SidRange{b, std::min<Sid>(b + morsel_rows,
                                                  ranges[i].end)});
    }
  }
  return morsels;
}

// ---------------------------------------------------------------------
// ParallelScanSource.
// ---------------------------------------------------------------------

ParallelScanSource::ParallelScanSource(std::vector<SidRange> morsels,
                                       MorselSourceFactory factory,
                                       ScanOptions options,
                                       bool renumber_rids)
    : morsels_(std::move(morsels)),
      factory_(std::move(factory)),
      opts_(options),
      renumber_rids_(renumber_rids) {
  if (opts_.num_threads <= 0) opts_.num_threads = ThreadPool::DefaultThreads();
  if (opts_.batch_rows == 0) opts_.batch_rows = kDefaultBatchSize;
  num_workers_ = std::min<size_t>(static_cast<size_t>(opts_.num_threads),
                                  morsels_.size());
  inflight_window_ = std::max<size_t>(2 * num_workers_, num_workers_ + 1);
  queue_cap_ = std::max<size_t>(4 * num_workers_, 2);
  states_.resize(morsels_.size());
}

ParallelScanSource::~ParallelScanSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    abort_ = true;
  }
  producer_cv_.notify_all();
  consumer_cv_.notify_all();
  pool_.reset();  // joins the workers
}

void ParallelScanSource::Start() {
  started_ = true;
  if (num_workers_ == 0) return;  // no morsels: Next reports end-of-stream
  workers_live_ = num_workers_;
  pool_ = std::make_unique<ThreadPool>(static_cast<int>(num_workers_));
  for (size_t i = 0; i < num_workers_; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
}

void ParallelScanSource::GrabRecycledBatch(Batch* b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!freelist_.empty()) {
    *b = std::move(freelist_.back());
    freelist_.pop_back();
  }
}

void ParallelScanSource::WorkerLoop() {
  RunWorker();
  std::lock_guard<std::mutex> lock(mu_);
  if (--workers_live_ == 0) consumer_cv_.notify_all();
}

void ParallelScanSource::RunWorker() {
  Batch local;
  while (true) {
    size_t m;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (opts_.ordered) {
        // Window gate: never run ahead of the consumer by more than
        // inflight_window_ morsels, bounding buffered output. The head
        // morsel is always inside the window, so the scan cannot wedge.
        producer_cv_.wait(lock, [this] {
          return abort_ || next_morsel_ >= morsels_.size() ||
                 next_morsel_ < head_ + inflight_window_;
        });
      }
      if (abort_ || next_morsel_ >= morsels_.size()) return;
      m = next_morsel_++;
    }
    std::unique_ptr<BatchSource> src =
        factory_(m, morsels_[m], m + 1 == morsels_.size());
    while (true) {
      GrabRecycledBatch(&local);
      StatusOr<bool> more = src->Next(&local, opts_.batch_rows);
      std::unique_lock<std::mutex> lock(mu_);
      if (abort_) return;
      if (!more.ok()) {
        if (error_.ok()) error_ = more.status();
        abort_ = true;
        producer_cv_.notify_all();
        consumer_cv_.notify_all();
        return;
      }
      if (!*more) {
        if (opts_.ordered) {
          states_[m].done = true;
          consumer_cv_.notify_all();
        }
        break;
      }
      if (opts_.ordered) {
        states_[m].batches.push_back(std::move(local));
      } else {
        producer_cv_.wait(lock, [this] {
          return abort_ || ready_.size() < queue_cap_;
        });
        if (abort_) return;
        ready_.push_back(std::move(local));
      }
      consumer_cv_.notify_one();
      local = Batch();
    }
  }
}

bool ParallelScanSource::EmitPendingSlice(Batch* out, size_t max_rows) {
  const size_t take =
      std::min(max_rows, pending_.num_rows() - pending_off_);
  out->ResetLike(pending_);
  out->set_start_rid(pending_.start_rid() + pending_off_);
  for (size_t i = 0; i < pending_.num_columns(); ++i) {
    out->column(i).AppendRange(pending_.column(i), pending_off_,
                               pending_off_ + take);
  }
  pending_off_ += take;
  rows_emitted_ += take;
  if (pending_off_ >= pending_.num_rows()) {
    spent_.push_back(std::move(pending_));
    pending_ = Batch();
    pending_off_ = 0;
  }
  return true;
}

StatusOr<bool> ParallelScanSource::Refill() {
  std::unique_lock<std::mutex> lock(mu_);
  // Return consumed batch storage to the workers in bulk.
  for (Batch& b : spent_) {
    if (freelist_.size() >= 2 * num_workers_ + 2) break;
    freelist_.push_back(std::move(b));
  }
  spent_.clear();
  while (true) {
    if (!error_.ok()) return error_;
    if (opts_.ordered) {
      if (head_ >= morsels_.size()) return false;
      MorselState& st = states_[head_];
      if (!st.batches.empty()) {
        drained_.swap(st.batches);  // take everything the head has
        return true;
      }
      if (st.done) {
        ++head_;
        producer_cv_.notify_all();  // claim window moved
        continue;
      }
    } else {
      if (!ready_.empty()) {
        drained_.swap(ready_);
        producer_cv_.notify_all();  // queue has room
        return true;
      }
      if (workers_live_ == 0) return false;
    }
    consumer_cv_.wait(lock);
  }
}

StatusOr<bool> ParallelScanSource::Next(Batch* out, size_t max_rows) {
  if (!started_) Start();
  if (max_rows == 0) max_rows = kDefaultBatchSize;
  if (pending_off_ < pending_.num_rows()) {
    return EmitPendingSlice(out, max_rows);
  }
  if (drained_.empty()) {
    PDT_ASSIGN_OR_RETURN(bool more, Refill());
    if (!more) return false;
  }
  Batch got = std::move(drained_.front());
  drained_.pop_front();

  if (renumber_rids_) got.set_start_rid(rows_emitted_);
  if (got.num_rows() <= max_rows) {
    spent_.push_back(std::move(*out));  // recycle the consumer's storage
    *out = std::move(got);
    rows_emitted_ += out->num_rows();
    return true;
  }
  // Worker batch exceeds the consumer's budget: serve it in slices.
  pending_ = std::move(got);
  pending_off_ = 0;
  return EmitPendingSlice(out, max_rows);
}

}  // namespace pdtstore

#include "exec/sort.h"

#include <algorithm>
#include <numeric>

#include "exec/operator.h"

namespace pdtstore {

StatusOr<bool> SortNode::Next(Batch* out, size_t max_rows) {
  if (!built_) {
    PDT_ASSIGN_OR_RETURN(Batch all, MaterializeAll(input_.get()));
    SelVector idx;
    idx.indices().resize(all.num_rows());
    std::iota(idx.indices().begin(), idx.indices().end(), 0);
    std::stable_sort(idx.indices().begin(), idx.indices().end(),
                     [&](uint32_t a, uint32_t b) {
      for (const SortKey& k : keys_) {
        int c = all.column(k.idx).CompareAt(a, all.column(k.idx), b);
        if (c != 0) return k.descending ? c > 0 : c < 0;
      }
      return false;
    });
    if (limit_ > 0 && idx.size() > limit_) idx.indices().resize(limit_);
    Batch sorted;
    sorted.set_column_ids(all.column_ids());
    for (size_t c = 0; c < all.num_columns(); ++c) {
      sorted.columns().emplace_back(all.column(c).type());
    }
    sorted.AppendGather(all, idx);
    emitter_ = std::make_unique<VectorSource>(std::move(sorted));
    built_ = true;
  }
  return emitter_->Next(out, max_rows);
}

}  // namespace pdtstore

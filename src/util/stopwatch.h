// Wall-clock stopwatch for benchmarks and examples.
#ifndef PDTSTORE_UTIL_STOPWATCH_H_
#define PDTSTORE_UTIL_STOPWATCH_H_

#include <chrono>

namespace pdtstore {

/// Measures elapsed wall-clock time since construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdtstore

#endif  // PDTSTORE_UTIL_STOPWATCH_H_

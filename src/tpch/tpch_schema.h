// TPC-H-style schemas matching the paper's evaluation setup (Sec. 4):
// lineitem ordered on {l_orderkey, l_linenumber}, orders ordered on
// {o_orderdate, o_orderkey} ("index-organized" columnar tables), plus the
// dimension tables the query kernels join against. Dates are int64 days
// since 1992-01-01.
#ifndef PDTSTORE_TPCH_TPCH_SCHEMA_H_
#define PDTSTORE_TPCH_TPCH_SCHEMA_H_

#include <memory>

#include "columnstore/schema.h"

namespace pdtstore {
namespace tpch {

/// Day-number bounds of the 7-year TPC-H date domain.
constexpr int64_t kMinDate = 0;     ///< 1992-01-01
constexpr int64_t kMaxDate = 2557;  ///< ~1998-12-31

/// Converts a (y, m, d) in the TPC-H domain to a day number (approximate
/// civil calendar: fine for range predicates, monotone in real dates).
int64_t DayNumber(int year, int month, int day);

// Column indexes: lineitem.
enum LineitemCol : ColumnId {
  kLOrderkey = 0,
  kLPartkey,
  kLSuppkey,
  kLLinenumber,
  kLQuantity,
  kLExtendedprice,
  kLDiscount,
  kLTax,
  kLReturnflag,
  kLLinestatus,
  kLShipdate,
  kLCommitdate,
  kLReceiptdate,
  kLShipmode,
  kLNumColumns
};

// Column indexes: orders.
enum OrdersCol : ColumnId {
  kOOrderdate = 0,
  kOOrderkey,
  kOCustkey,
  kOOrderstatus,
  kOTotalprice,
  kOOrderpriority,
  kOShippriority,
  kONumColumns
};

// Column indexes: customer.
enum CustomerCol : ColumnId {
  kCCustkey = 0,
  kCName,
  kCNationkey,
  kCAcctbal,
  kCMktsegment,
  kCNumColumns
};

// Column indexes: part.
enum PartCol : ColumnId {
  kPPartkey = 0,
  kPName,
  kPBrand,
  kPType,
  kPSize,
  kPContainer,
  kPRetailprice,
  kPNumColumns
};

// Column indexes: supplier.
enum SupplierCol : ColumnId {
  kSSuppkey = 0,
  kSName,
  kSNationkey,
  kSAcctbal,
  kSNumColumns
};

// Column indexes: nation.
enum NationCol : ColumnId {
  kNNationkey = 0,
  kNName,
  kNRegionkey,
  kNNumColumns
};

std::shared_ptr<const Schema> LineitemSchema();
std::shared_ptr<const Schema> OrdersSchema();
std::shared_ptr<const Schema> CustomerSchema();
std::shared_ptr<const Schema> PartSchema();
std::shared_ptr<const Schema> SupplierSchema();
std::shared_ptr<const Schema> NationSchema();

}  // namespace tpch
}  // namespace pdtstore

#endif  // PDTSTORE_TPCH_TPCH_SCHEMA_H_

// Database catalog tests: table lifecycle, shared buffer pool, I/O stats
// and cache-drop semantics used by the cold/hot benchmark protocol.
#include "db/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace pdtstore {
namespace {

using testutil::InventoryRows;
using testutil::InventorySchema;

TEST(DatabaseTest, TableLifecycle) {
  Database db;
  auto schema = InventorySchema();
  auto t1 = db.CreateTable("inventory", schema);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(db.CreateTable("inventory", schema).status().code(),
            StatusCode::kAlreadyExists);
  auto got = db.GetTable("inventory");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *t1);
  EXPECT_EQ(db.GetTable("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.TableNames(), std::vector<std::string>{"inventory"});
  ASSERT_TRUE(db.DropTable("inventory").ok());
  EXPECT_EQ(db.DropTable("inventory").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, TablesShareTheBufferPool) {
  Database db;
  auto schema = InventorySchema();
  Table* a = *db.CreateTable("a", schema);
  Table* b = *db.CreateTable("b", schema);
  ASSERT_TRUE(a->Load(InventoryRows()).ok());
  ASSERT_TRUE(b->Load(InventoryRows()).ok());
  EXPECT_EQ(a->buffer_pool(), b->buffer_pool());
  EXPECT_EQ(a->buffer_pool(), db.buffer_pool());
}

TEST(DatabaseTest, IoAccountingAndDropCaches) {
  Database db;
  auto schema = InventorySchema();
  Table* t = *db.CreateTable("inventory", schema);
  ASSERT_TRUE(t->Load(InventoryRows()).ok());
  db.DropCaches();
  db.ResetIoStats();
  auto scan = t->Scan({0, 1, 2, 3});
  (void)CollectRows(scan.get());
  uint64_t cold_bytes = db.io_stats().bytes_read;
  EXPECT_GT(cold_bytes, 0u);
  // A second scan is fully cached: no new bytes.
  db.ResetIoStats();
  auto scan2 = t->Scan({0, 1, 2, 3});
  (void)CollectRows(scan2.get());
  EXPECT_EQ(db.io_stats().bytes_read, 0u);
  EXPECT_GT(db.io_stats().hits, 0u);
  // Dropping caches makes it cold again.
  db.DropCaches();
  db.ResetIoStats();
  auto scan3 = t->Scan({0, 1, 2, 3});
  (void)CollectRows(scan3.get());
  EXPECT_EQ(db.io_stats().bytes_read, cold_bytes);
}

TEST(DatabaseTest, NarrowProjectionReadsFewerBytes) {
  // The core of the columnar argument: scanning one column must pull
  // fewer bytes than scanning all of them.
  Database db;
  auto schema = InventorySchema();
  Table* t = *db.CreateTable("inventory", schema);
  ASSERT_TRUE(t->Load(InventoryRows()).ok());
  db.DropCaches();
  db.ResetIoStats();
  (void)CollectRows(t->Scan({3}).get());
  uint64_t narrow = db.io_stats().bytes_read;
  db.DropCaches();
  db.ResetIoStats();
  (void)CollectRows(t->Scan({0, 1, 2, 3}).get());
  uint64_t wide = db.io_stats().bytes_read;
  EXPECT_LT(narrow, wide);
}

TEST(DatabaseTest, VdtScanReadsKeyColumnsPdtDoesNot) {
  // The paper's headline asymmetry, as a direct I/O assertion.
  auto schema = InventorySchema();
  Database db;
  TableOptions pdt_opts, vdt_opts;
  vdt_opts.backend = DeltaBackend::kVdt;
  Table* pdt_table = *db.CreateTable("p", schema, pdt_opts);
  Table* vdt_table = *db.CreateTable("v", schema, vdt_opts);
  ASSERT_TRUE(pdt_table->Load(InventoryRows()).ok());
  ASSERT_TRUE(vdt_table->Load(InventoryRows()).ok());
  // One update each so the merge paths actually engage.
  ASSERT_TRUE(pdt_table->Insert({"Berlin", "rack", "Y", 4}).ok());
  ASSERT_TRUE(vdt_table->Insert({"Berlin", "rack", "Y", 4}).ok());

  db.DropCaches();
  db.ResetIoStats();
  (void)CollectRows(pdt_table->Scan({3}).get());  // qty only
  uint64_t pdt_bytes = db.io_stats().bytes_read;

  db.DropCaches();
  db.ResetIoStats();
  (void)CollectRows(vdt_table->Scan({3}).get());
  uint64_t vdt_bytes = db.io_stats().bytes_read;
  // The VDT scan was forced to read store+prod as well.
  EXPECT_GT(vdt_bytes, pdt_bytes);
}

TEST(DatabaseTest, BoundedPoolStaysWithinCapacity) {
  DatabaseOptions opts;
  opts.buffer_pool_bytes = 4096;
  Database db(opts);
  auto schema = InventorySchema();
  TableOptions topts;
  topts.store.chunk_rows = 2;
  Table* t = *db.CreateTable("inventory", schema, topts);
  ASSERT_TRUE(t->Load(InventoryRows()).ok());
  (void)CollectRows(t->Scan({0, 1, 2, 3}).get());
  EXPECT_LE(db.buffer_pool()->cached_bytes(), 4096u + 2048u);
}

}  // namespace
}  // namespace pdtstore

#include "db/table.h"

#include <algorithm>

#include "exec/shared_scan.h"
#include "txn/layered.h"  // internal::LayeredScan
#include "util/string_util.h"

namespace pdtstore {

Table::Table(std::string name, std::shared_ptr<const Schema> schema,
             TableOptions options, std::shared_ptr<BufferPool> pool)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      options_(options),
      pool_(pool ? std::move(pool) : std::make_shared<BufferPool>()) {
  store_ = std::make_unique<ColumnStore>(*schema_, options_.store, pool_);
  if (options_.backend == DeltaBackend::kPdt) {
    pdt_ = std::make_shared<Pdt>(schema_, options_.pdt);
  } else {
    vdt_ = std::make_unique<Vdt>(schema_);
  }
}

Status Table::Load(const std::vector<Tuple>& rows) {
  if (loaded_) return Status::InvalidArgument("table already loaded");
  PDT_RETURN_NOT_OK(store_->BulkLoad(rows));
  PDT_ASSIGN_OR_RETURN(sparse_index_, SparseIndex::Build(*store_));
  loaded_ = true;
  return Status::OK();
}

Status Table::LoadColumns(std::vector<ColumnVector> columns) {
  if (loaded_) return Status::InvalidArgument("table already loaded");
  PDT_RETURN_NOT_OK(store_->BulkLoadColumns(std::move(columns)));
  PDT_ASSIGN_OR_RETURN(sparse_index_, SparseIndex::Build(*store_));
  loaded_ = true;
  return Status::OK();
}

uint64_t Table::RowCount() const {
  auto pdt = PinPdt();
  int64_t delta = pdt ? pdt->TotalDelta() : vdt_->TotalDelta();
  return static_cast<uint64_t>(static_cast<int64_t>(store_->num_rows()) +
                               delta);
}

// ---------------------------------------------------------------------
// Merged-image access (PDT). The public entry points pin the Read-PDT
// once and run every probe against that snapshot (see PinPdt()).
// ---------------------------------------------------------------------

uint64_t Table::RowCountIn(const Pdt& pdt) const {
  return static_cast<uint64_t>(static_cast<int64_t>(store_->num_rows()) +
                               pdt.TotalDelta());
}

StatusOr<Tuple> Table::GetMergedTupleIn(const Pdt& pdt, Rid rid) const {
  if (rid >= RowCountIn(pdt)) return Status::OutOfRange("rid out of range");
  Pdt::RidLookup lookup = pdt.LookupRid(rid);
  if (lookup.is_insert) {
    return pdt.value_space().GetInsertTuple(lookup.insert_offset);
  }
  PDT_ASSIGN_OR_RETURN(Tuple t, store_->GetTuple(lookup.sid));
  for (auto [col, off] : lookup.mods) {
    t[col] = pdt.value_space().GetModifyValue(col, off);
  }
  return t;
}

StatusOr<Tuple> Table::GetMergedTuple(Rid rid) const {
  auto pdt = PinPdt();
  if (!pdt) return Status::InvalidArgument("positional access needs PDT");
  return GetMergedTupleIn(*pdt, rid);
}

StatusOr<std::vector<Value>> Table::MergedSortKeyIn(const Pdt& pdt,
                                                    Rid rid) const {
  Pdt::RidLookup lookup = pdt.LookupRid(rid);
  if (lookup.is_insert) {
    return pdt.value_space().GetInsertSortKey(lookup.insert_offset);
  }
  // SK columns are never modified in place (SK modifies are delete +
  // insert), so the stable key is authoritative.
  return store_->GetSortKey(lookup.sid);
}

StatusOr<std::vector<Value>> Table::MergedSortKey(Rid rid) const {
  auto pdt = PinPdt();
  if (!pdt) return Status::InvalidArgument("positional access needs PDT");
  return MergedSortKeyIn(*pdt, rid);
}

StatusOr<Rid> Table::UpperBoundRidIn(const Pdt& pdt,
                                     const std::vector<Value>& key) const {
  Rid lo = 0, hi = RowCountIn(pdt);
  while (lo < hi) {
    Rid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(auto mid_key, MergedSortKeyIn(pdt, mid));
    // Compare on the shorter prefix; ties resolve upward (upper bound).
    int cmp = 0;
    for (size_t i = 0; i < mid_key.size() && i < key.size(); ++i) {
      cmp = mid_key[i].Compare(key[i]);
      if (cmp != 0) break;
    }
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<Rid> Table::UpperBoundRid(const std::vector<Value>& key) const {
  auto pdt = PinPdt();
  if (!pdt) return Status::InvalidArgument("positional access needs PDT");
  return UpperBoundRidIn(*pdt, key);
}

StatusOr<Rid> Table::FindRidByKeyIn(const Pdt& pdt,
                                    const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(Rid ub, UpperBoundRidIn(pdt, key));
  if (ub == 0) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(auto prev_key, MergedSortKeyIn(pdt, ub - 1));
  if (CompareTuples(prev_key, key) != 0) {
    return Status::NotFound("key not found");
  }
  return ub - 1;
}

StatusOr<Rid> Table::FindRidByKey(const std::vector<Value>& key) const {
  auto pdt = PinPdt();
  if (!pdt) return Status::InvalidArgument("positional access needs PDT");
  return FindRidByKeyIn(*pdt, key);
}

StatusOr<bool> Table::ContainsKey(const std::vector<Value>& key) const {
  if (auto pdt = PinPdt()) {
    auto rid = FindRidByKeyIn(*pdt, key);
    if (rid.ok()) return true;
    if (rid.status().code() == StatusCode::kNotFound) return false;
    return rid.status();
  }
  if (vdt_->FindInsert(key) != nullptr) return true;
  if (vdt_->IsDeleted(key)) return false;
  return StableHasKey(key);
}

// ---------------------------------------------------------------------
// Stable-image search helpers.
// ---------------------------------------------------------------------

StatusOr<Sid> Table::StableLowerBound(const std::vector<Value>& key) const {
  Sid lo = 0, hi = store_->num_rows();
  while (lo < hi) {
    Sid mid = lo + (hi - lo) / 2;
    PDT_ASSIGN_OR_RETURN(auto mid_key, store_->GetSortKey(mid));
    if (CompareTuples(mid_key, key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StatusOr<bool> Table::StableHasKey(const std::vector<Value>& key) const {
  PDT_ASSIGN_OR_RETURN(Sid lb, StableLowerBound(key));
  if (lb >= store_->num_rows()) return false;
  PDT_ASSIGN_OR_RETURN(auto lb_key, store_->GetSortKey(lb));
  return CompareTuples(lb_key, key) == 0;
}

StatusOr<Tuple> Table::GetTupleByKey(const std::vector<Value>& key) const {
  if (auto pdt = PinPdt()) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKeyIn(*pdt, key));
    return GetMergedTupleIn(*pdt, rid);
  }
  if (const Tuple* t = vdt_->FindInsert(key)) return *t;
  if (vdt_->IsDeleted(key)) return Status::NotFound("key deleted");
  PDT_ASSIGN_OR_RETURN(Sid lb, StableLowerBound(key));
  if (lb >= store_->num_rows()) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(auto lb_key, store_->GetSortKey(lb));
  if (CompareTuples(lb_key, key) != 0) {
    return Status::NotFound("key not found");
  }
  return store_->GetTuple(lb);
}

// ---------------------------------------------------------------------
// Updates.
// ---------------------------------------------------------------------

namespace {
Status ReadOnlyError(const std::string& name) {
  return Status::InvalidArgument("table " + name +
                                 " is read-only (recovery degraded)");
}
}  // namespace

Status Table::Insert(const Tuple& tuple) {
  if (read_only_) return ReadOnlyError(name_);
  PDT_RETURN_NOT_OK(schema_->ValidateTuple(tuple));
  std::vector<Value> key = schema_->ExtractSortKey(tuple);
  if (auto pdt = PinPdt()) {
    auto existing = FindRidByKeyIn(*pdt, key);
    if (existing.ok()) {
      return Status::AlreadyExists("duplicate sort key on insert");
    }
    if (existing.status().code() != StatusCode::kNotFound) {
      return existing.status();
    }
    // The paper's positioning query: min RID whose tuple has a larger SK,
    // then Algorithm 6 to respect ghost order.
    PDT_ASSIGN_OR_RETURN(Rid rid, UpperBoundRidIn(*pdt, key));
    Sid sid = pdt->SKRidToSid(key, rid);
    return pdt->AddInsert(sid, rid, tuple);
  }
  PDT_ASSIGN_OR_RETURN(bool exists, ContainsKey(key));
  if (exists) {
    return Status::AlreadyExists("duplicate sort key on insert");
  }
  return vdt_->AddInsert(tuple);
}

Status Table::DeleteAt(Rid rid) {
  if (read_only_) return ReadOnlyError(name_);
  auto pdt = PinPdt();
  if (!pdt) return Status::InvalidArgument("positional delete needs PDT");
  if (rid >= RowCountIn(*pdt)) return Status::OutOfRange("rid out of range");
  PDT_ASSIGN_OR_RETURN(auto key, MergedSortKeyIn(*pdt, rid));
  return pdt->AddDelete(rid, key);
}

Status Table::ModifyAt(Rid rid, ColumnId col, const Value& v) {
  if (read_only_) return ReadOnlyError(name_);
  auto pdt = PinPdt();
  if (!pdt) return Status::InvalidArgument("positional modify needs PDT");
  if (rid >= RowCountIn(*pdt)) return Status::OutOfRange("rid out of range");
  if (schema_->IsSortKeyColumn(col)) {
    // SK modify = delete + insert (Sec. 2.1).
    PDT_ASSIGN_OR_RETURN(Tuple t, GetMergedTupleIn(*pdt, rid));
    PDT_RETURN_NOT_OK(DeleteAt(rid));
    t[col] = v;
    return Insert(t);
  }
  return pdt->AddModify(rid, col, v);
}

Status Table::DeleteByKey(const std::vector<Value>& key) {
  if (read_only_) return ReadOnlyError(name_);
  if (auto pdt = PinPdt()) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKeyIn(*pdt, key));
    return pdt->AddDelete(rid, key);
  }
  PDT_ASSIGN_OR_RETURN(bool exists, ContainsKey(key));
  if (!exists) return Status::NotFound("key not found");
  PDT_ASSIGN_OR_RETURN(bool stable, StableHasKey(key));
  return vdt_->AddDelete(key, stable);
}

Status Table::ModifyByKey(const std::vector<Value>& key, ColumnId col,
                          const Value& v) {
  if (read_only_) return ReadOnlyError(name_);
  if (auto pdt = PinPdt()) {
    PDT_ASSIGN_OR_RETURN(Rid rid, FindRidByKeyIn(*pdt, key));
    return ModifyAt(rid, col, v);
  }
  PDT_ASSIGN_OR_RETURN(Tuple t, GetTupleByKey(key));
  PDT_ASSIGN_OR_RETURN(bool stable, StableHasKey(key));
  if (schema_->IsSortKeyColumn(col)) {
    PDT_RETURN_NOT_OK(vdt_->AddDelete(key, stable));
    t[col] = v;
    return vdt_->AddInsert(t);
  }
  t[col] = v;
  return vdt_->AddModify(t, stable);
}

// ---------------------------------------------------------------------
// Scan.
// ---------------------------------------------------------------------

std::unique_ptr<BatchSource> Table::Scan(std::vector<ColumnId> projection,
                                         const KeyBounds* bounds,
                                         const ScanOptions& scan_opts) const {
  return MakeScanSource(PlanMorsels(std::move(projection), bounds,
                                    scan_opts));
}

MorselPlan Table::PlanMorsels(std::vector<ColumnId> projection,
                              const KeyBounds* bounds,
                              const ScanOptions& scan_opts) const {
  std::vector<SidRange> ranges;
  if (bounds != nullptr) {
    ranges = sparse_index_.LookupRange(bounds->lo, bounds->hi);
  }
  // Pin the Read-PDT for the whole plan: the plan's sources carry the
  // pin (LayeredMorselPlan's `pins`), so a background merge installing
  // a replacement mid-scan cannot free the layer under the cursors.
  std::shared_ptr<const Pdt> pdt = SharedPdt();
  if (!pdt) {
    // VDT: zone pruning needs no entry check — the insert map carries
    // full tuples and its drain is key-fenced, never positional (the
    // PDT path prunes inside LayeredMorselPlan, entry-checked).
    ranges = PruneRangesWithZoneMaps(*store_, {}, std::move(ranges),
                                     scan_opts.zone_filters, projection);
  }
  if (pdt) {
    // Serial or morsel-parallel over the single-layer stack — the same
    // shared planning step the transaction scan paths use.
    std::vector<ColumnId> projection_key = projection;  // for the hub key
    MorselPlan plan = internal::LayeredMorselPlan(*store_, {pdt.get()},
                                                  std::move(projection),
                                                  std::move(ranges),
                                                  scan_opts, {pdt});
    // Cooperative shared scan: only the plain full-snapshot shape is
    // shareable — no key bounds and no zone filters (both change which
    // morsels exist / which rows a morsel yields), and a morsel plan
    // actually materialized (not the serial fallback). The key's
    // snapshot component is the pinned PDT layer by pointer: a merge
    // installing a new Read-PDT changes it, so post-merge queries never
    // ride a stale stream. The factory's captured pin (`pins` above)
    // keeps this snapshot alive for every rider.
    if (scan_opts.shared_scan && plan.serial == nullptr &&
        bounds == nullptr && scan_opts.zone_filters.empty()) {
      SharedScanKey key;
      key.table = this;
      key.snapshot = pdt.get();
      key.projection = std::move(projection_key);
      key.morsel_rows = plan.options.morsel_rows;
      key.batch_rows = plan.options.batch_rows;
      plan.shared = SharedScanHub::Global().AttachOrCreate(
          key, plan.morsels, plan.factory, plan.options);
    }
    return plan;
  }
  // Parallel VDT path (ResolveMorselPlan: an empty range list means "no
  // pruning" — both the unbounded scan and the conservative LookupRange
  // fallback — i.e. the whole table).
  MorselPlan plan;
  plan.options = scan_opts;
  if (!ResolveMorselPlan(&ranges, store_->num_rows(),
                         store_->options().chunk_rows,
                         vdt_->InsertCount() + vdt_->DeleteCount(),
                         &plan)) {
    plan.serial = std::make_unique<VdtMergeScan>(
        store_.get(), vdt_.get(), std::move(projection), std::move(ranges),
        bounds ? *bounds : KeyBounds{});
    return plan;
  }

  // VDT: the delta has no positions, so morsel ownership of differential
  // entries is by key — each morsel's fences are the stable SKs at its
  // begin and at the next morsel's begin (see VdtMergeScan).
  std::vector<std::vector<Value>> begin_keys(plan.morsels.size());
  for (size_t i = 1; i < plan.morsels.size(); ++i) {
    auto key = store_->GetSortKey(plan.morsels[i].begin);
    if (!key.ok()) {
      // Cannot fence: fall back to the serial scan.
      plan.morsels.clear();
      plan.serial = std::make_unique<VdtMergeScan>(
          store_.get(), vdt_.get(), std::move(projection),
          std::move(ranges), bounds ? *bounds : KeyBounds{});
      return plan;
    }
    begin_keys[i] = std::move(*key);
  }
  const ColumnStore* store = store_.get();
  const Vdt* vdt = vdt_.get();
  KeyBounds user_bounds = bounds ? *bounds : KeyBounds{};
  plan.factory =
      [store, vdt, projection = std::move(projection), user_bounds,
       begin_keys = std::move(begin_keys)](
          size_t idx, const SidRange& morsel, bool final_morsel) {
        std::vector<Value> fence_lo =
            idx == 0 ? std::vector<Value>{} : begin_keys[idx];
        std::vector<Value> fence_hi =
            final_morsel ? std::vector<Value>{} : begin_keys[idx + 1];
        return std::make_unique<VdtMergeScan>(
            store, vdt, projection, std::vector<SidRange>{morsel},
            user_bounds, std::move(fence_lo), std::move(fence_hi));
      };
  // VDT batches carry morsel-local RIDs; the ordered exchange renumbers
  // them (pipeline fragments ignore RIDs).
  plan.renumber_rids = true;
  return plan;
}

// ---------------------------------------------------------------------
// Checkpoint.
// ---------------------------------------------------------------------

Status Table::Checkpoint(int num_threads) {
  if (read_only_) return ReadOnlyError(name_);
  // Materialize the merged image column-wise. With num_threads > 1 the
  // merge runs as ordered morsels on the shared worker pool — the
  // ordered exchange reproduces the serial scan's exact row sequence,
  // so the rebuilt image is byte-identical to the serial one.
  std::vector<ColumnId> all_cols(schema_->num_columns());
  for (ColumnId i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  ScanOptions scan_opts;
  scan_opts.num_threads = num_threads;
  scan_opts.ordered = true;
  auto scan = Scan(all_cols, nullptr, scan_opts);
  std::vector<ColumnVector> cols;
  cols.reserve(all_cols.size());
  for (ColumnId c = 0; c < all_cols.size(); ++c) {
    cols.emplace_back(schema_->column(c).type);
  }
  Batch batch;
  while (true) {
    PDT_ASSIGN_OR_RETURN(bool more, scan->Next(&batch, kDefaultBatchSize));
    if (!more) break;
    for (size_t c = 0; c < cols.size(); ++c) {
      cols[c].AppendRange(batch.column(c), 0, batch.num_rows());
    }
  }
  // ...swap in a fresh stable image and reset the delta. The old store's
  // chunks fall out of the buffer pool lazily (their keys are unique).
  auto fresh = std::make_unique<ColumnStore>(*schema_, options_.store, pool_);
  PDT_RETURN_NOT_OK(fresh->BulkLoadColumns(std::move(cols)));
  store_ = std::move(fresh);
  PDT_ASSIGN_OR_RETURN(sparse_index_, SparseIndex::Build(*store_));
  if (auto pdt = PinPdt()) pdt->Clear();
  if (vdt_) vdt_->Clear();
  return Status::OK();
}

size_t Table::DeltaMemoryBytes() const {
  auto pdt = PinPdt();
  return pdt ? pdt->MemoryBytes() : vdt_->MemoryBytes();
}

}  // namespace pdtstore

// Morsel-driven parallel scan: an exchange operator that runs one merge
// cursor per worker over a shared queue of disjoint SID-range morsels
// (the natural work units LookupRange / chunk bounds provide — PDT layers
// are read-only during scans, so workers share them lock-free).
//
// Since PR 3 the exchange is also the spine of parallel *pipelines*
// (exec/pipeline.h): each worker may run a chain of PipelineOps (filter,
// project, join probe) over every batch it merges before handing it to
// the pulling consumer, so whole pipeline fragments execute inside the
// workers and the exchange is the pipeline breaker, not the scan.
//
// The consumer stays a plain single-threaded BatchSource: pull-based
// operators sit on top unchanged — though the formerly serial breakers
// now have parallel forms of their own (exec/pipeline.h): per-worker
// pre-aggregation, the hash-partitioned join build, and per-worker
// sorted runs merged by a loser tree. Two delivery modes:
//   * ordered   — morsel outputs are emitted in morsel (= SID) order, so
//                 SID/RID-ordered consumers see exactly the sequence the
//                 single-threaded scan (or serial fragment) would produce;
//   * unordered — batches are emitted as workers finish them (same
//                 multiset of rows), for order-insensitive pipelines.
//
// Workers are tasks on the process-wide ThreadPool::Global(), so
// concurrent queries share threads. Liveness never depends on the pool:
// whenever the consumer would block with unclaimed morsels remaining, it
// claims and processes one itself (morsel-driven "help"), so every scan
// completes even if the pool is saturated by other queries.
#ifndef PDTSTORE_EXEC_PARALLEL_SCAN_H_
#define PDTSTORE_EXEC_PARALLEL_SCAN_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "columnstore/batch.h"
#include "storage/sparse_index.h"
#include "util/thread_pool.h"

namespace pdtstore {

class PipelineOp;
class PipelineOpState;
class SharedScanConsumer;

/// Default morsel granularity: ~64K SIDs amortize per-morsel setup
/// (cursor seek, source construction) to noise while leaving plenty of
/// morsels for dynamic load balancing on skewed update distributions.
/// Also the upper bound of the auto-tuned size (AutoMorselRows).
constexpr size_t kDefaultMorselRows = 64 * 1024;

/// Pruning-only hint for zone-map chunk skipping: the caller promises
/// its predicate rejects every row of `col` outside [lo, hi] (both
/// inclusive, typed like the column). Planning drops chunks whose
/// min/max metadata proves no overlap (exec/zone_prune.h) — they are
/// never fetched or decoded, and are charged to the buffer pool's skip
/// counters instead of its read counters. Hints never replace the real
/// predicate: the scan output is unchanged, only dead I/O disappears.
struct ZoneFilter {
  ColumnId col = 0;
  Value lo;
  Value hi;
};

/// Scan execution knobs, plumbed through Table::Scan and the transaction
/// scan paths. The default (1 thread) is the unchanged serial scan.
struct ScanOptions {
  /// Worker threads; <= 0 means ThreadPool::DefaultThreads(). 1 = serial.
  /// This is a per-query cap on workers drawn from the shared process
  /// pool, not a dedicated thread count.
  int num_threads = 1;
  /// Emit morsels in SID order (true) or as completed (false).
  bool ordered = true;
  /// Morsel granularity in stable SIDs. 0 (the default) auto-tunes from
  /// the chunk size and the observed delta entry density (AutoMorselRows).
  size_t morsel_rows = 0;
  /// Rows per batch a worker pulls from its merge cursor.
  size_t batch_rows = kDefaultBatchSize;
  /// Zone-map pruning hints (see ZoneFilter). Empty = no pruning.
  std::vector<ZoneFilter> zone_filters;
  /// Opt into cooperative shared scans (exec/shared_scan.h): eligible
  /// full-snapshot scans attach to the process-wide SharedScanHub so
  /// concurrent queries over the same table snapshot ride one merge
  /// stream. Only unordered consumers actually share (attachment rotates
  /// per-consumer morsel order); ordered delivery keeps a private
  /// exchange. Setting this also forces the morsel path at
  /// num_threads == 1 so a serial query can still ride along.
  bool shared_scan = false;
};

/// Derives a morsel granularity from the storage chunk size, the scanned
/// SID span, the delta entry count and the worker count (the ROADMAP's
/// "morsel auto-tuning"): morsels are whole-chunk multiples when
/// possible, fine enough that every worker gets several units to load
/// balance, and shrink when the differential structure is dense so one
/// update-heavy morsel cannot dominate a worker. Clamped to
/// [min(chunk_rows, kDefaultMorselRows), kDefaultMorselRows].
size_t AutoMorselRows(size_t chunk_rows, uint64_t scan_sids,
                      size_t delta_entries, int num_threads);

/// Splits `ranges` (sorted, disjoint — the SparseIndex::LookupRange
/// invariant, asserted here in debug builds) into morsels of at most
/// `morsel_rows` SIDs, preserving order and disjointness.
std::vector<SidRange> SplitIntoMorsels(const std::vector<SidRange>& ranges,
                                       size_t morsel_rows);

struct MorselPlan;

/// Shared planning prologue of Table::PlanMorsels and the layered scan
/// plan: resolves plan->options (default thread count; morsel_rows == 0
/// auto-tunes via AutoMorselRows from `chunk_rows`, the scanned span and
/// `delta_entries`) and splits `*ranges` into plan->morsels (an empty
/// range list means the whole table of `table_rows` SIDs; the result
/// always has at least one morsel so trailing inserts have a home).
/// Returns false — leaving `*ranges` untouched — when the resolved
/// thread count is 1: the caller then fills plan->serial instead.
bool ResolveMorselPlan(std::vector<SidRange>* ranges, uint64_t table_rows,
                       size_t chunk_rows, size_t delta_entries,
                       MorselPlan* plan);

/// Builds the per-morsel merge cursor: called once per morsel, on a
/// worker thread. `final_morsel` is true for the scan's last morsel (the
/// one that emits trailing inserts). Must be thread-safe (the sources it
/// returns only read shared immutable state).
using MorselSourceFactory = std::function<std::unique_ptr<BatchSource>(
    size_t morsel_idx, const SidRange& morsel, bool final_morsel)>;

/// A planned merge scan, produced by Table::PlanMorsels /
/// Transaction::PlanMorsels and consumed by pipelines (exec/pipeline.h)
/// or turned directly into a BatchSource via MakeScanSource. Either
/// `serial` is set (single-threaded request, or a source that cannot be
/// split) or `morsels` + `factory` describe the parallel form.
struct MorselPlan {
  std::vector<SidRange> morsels;
  MorselSourceFactory factory;
  /// Batches carry morsel-local start RIDs that the ordered exchange
  /// must renumber into a running global count (the VDT merge).
  bool renumber_rids = false;
  /// Resolved options (num_threads / morsel_rows no longer 0).
  ScanOptions options;
  /// Set => the scan runs serially through this source.
  std::unique_ptr<BatchSource> serial;
  /// Set => this plan is attached to a shared merge stream
  /// (exec/shared_scan.h); unordered consumers pull from it instead of
  /// running a private exchange. `morsels` + `factory` stay valid as the
  /// fallback (ordered consumers, backlog re-runs use the factory via
  /// the stream).
  std::shared_ptr<SharedScanConsumer> shared;
};

/// The exchange: N workers claim morsels from a shared queue, run the
/// factory-built merge cursor (plus the optional PipelineOp chain) over
/// each, and hand batches to the pulling consumer. Workers pull into
/// recycled batches (Batch::ResetLike inside the sources) drawn from a
/// free list that consumed batches return to, so the steady state
/// allocates nothing. In ordered mode, morsel claiming is window-gated
/// (head + 2×workers) to bound buffered output; in unordered mode a
/// bounded ready queue applies backpressure.
///
/// The first error from any worker or operator aborts the scan and is
/// returned from Next(). Destruction aborts, waits only for workers that
/// already started (queued tasks keep the shared state alive and exit as
/// soon as the pool runs them), and never blocks on other queries.
class ParallelScanSource : public BatchSource {
 public:
  /// `renumber_rids` rewrites batch start RIDs with a running row count —
  /// used for ordered scans of sources that emit morsel-local positions
  /// (the VDT merge); PDT merge batches already carry global RIDs. It is
  /// ignored when `ops` is non-empty (fragment outputs have no stable
  /// RID meaning).
  ParallelScanSource(std::vector<SidRange> morsels,
                     MorselSourceFactory factory, ScanOptions options,
                     bool renumber_rids = false,
                     std::vector<std::unique_ptr<PipelineOp>> ops = {});
  ~ParallelScanSource() override;

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  struct MorselState {
    std::deque<Batch> batches;
    bool done = false;
  };

  // Everything the workers touch. Held by shared_ptr from every
  // submitted task, so a consumer that abandons the scan frees nothing a
  // late-starting task still needs.
  struct Shared {
    std::vector<SidRange> morsels;
    MorselSourceFactory factory;
    std::vector<std::unique_ptr<PipelineOp>> ops;
    ScanOptions opts;
    size_t num_workers = 0;

    std::mutex mu;
    std::condition_variable producer_cv;  // workers: claim window / room
    std::condition_variable consumer_cv;  // consumer: output available
    std::vector<MorselState> states;      // ordered mode, by morsel
    std::deque<Batch> ready;              // unordered mode
    std::vector<Batch> freelist;          // recycled batch storage
    size_t next_morsel = 0;               // next morsel to claim
    size_t head = 0;                      // ordered: next morsel to emit
    size_t inflight_window = 0;           // ordered claim window
    size_t queue_cap = 0;                 // unordered backpressure bound
    size_t morsels_done = 0;              // fully processed morsels
    size_t active_workers = 0;            // tasks past their start check
    Status error = Status::OK();          // first failure
    bool abort = false;

    // Body of one worker task (also reused by the consumer-help path
    // via ProcessMorsel).
    void RunWorker();
    // Claims+merges one morsel through the op chain into the queues.
    // Returns false on abort/error.
    bool ProcessMorsel(size_t m,
                       std::vector<std::unique_ptr<PipelineOpState>>* st,
                       bool helper);
    void GrabRecycledBatch(Batch* b);
  };

  void Start();
  // Refills drained_ with every batch currently available (one lock
  // acquisition amortized over many batches) and returns spent consumer
  // batches to the free list; claims + processes a morsel itself when it
  // would otherwise block with unclaimed morsels left; false at end of
  // stream.
  StatusOr<bool> Refill();
  // Emits up to max_rows of pending_ into out (batch larger than the
  // consumer's budget, sliced across several Next calls).
  bool EmitPendingSlice(Batch* out, size_t max_rows);

  std::shared_ptr<Shared> sh_;
  const bool renumber_rids_;
  bool started_ = false;

  // Consumer-side state (only touched by the pulling thread).
  std::vector<std::unique_ptr<PipelineOpState>> help_states_;
  std::deque<Batch> drained_;  // batches taken from the exchange in bulk
  std::vector<Batch> spent_;   // consumed storage awaiting bulk recycle
  Batch pending_;
  size_t pending_off_ = 0;
  uint64_t rows_emitted_ = 0;
};

/// Turns a MorselPlan into a BatchSource: the serial source as-is, or a
/// ParallelScanSource over the morsels.
std::unique_ptr<BatchSource> MakeScanSource(MorselPlan plan);

}  // namespace pdtstore

#endif  // PDTSTORE_EXEC_PARALLEL_SCAN_H_

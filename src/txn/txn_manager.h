// Three-layer PDT transaction management (Sec. 3.3, Fig. 14/15):
//
//   Trans-PDT  — private to a transaction, holds its uncommitted updates
//   Write-PDT  — small master PDT receiving committed updates; copied
//                (or shared, when no commit intervened) into each new
//                transaction's snapshot
//   Read-PDT   — large RAM-resident layer (here: the Table's PDT) that
//                Write-PDT contents are periodically propagated into
//
// Reads are lock-free: a query merges   stable ▷ Read ▷ Write-copy ▷ Trans
// entirely from snapshot-owned structures. Commits run Algorithm 9:
// serialize the Trans-PDT against every overlapping committed
// transaction's serialized Trans-PDT (conflict => abort), then propagate
// into the master Write-PDT; serialized PDTs are kept alive by reference
// counts while overlapping transactions still run.
#ifndef PDTSTORE_TXN_TXN_MANAGER_H_
#define PDTSTORE_TXN_TXN_MANAGER_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "db/table.h"
#include "txn/wal.h"

namespace pdtstore {

class TxnManager;

/// A snapshot-isolated transaction over one table. Not thread-safe
/// itself; distinct transactions may run on distinct threads.
class Transaction {
 public:
  ~Transaction();

  /// Transaction-local updates (buffered in the Trans-PDT).
  Status Insert(const Tuple& tuple);
  Status DeleteByKey(const std::vector<Value>& key);
  Status ModifyByKey(const std::vector<Value>& key, ColumnId col,
                     const Value& v);

  /// Snapshot reads, including own uncommitted updates. `scan_opts`
  /// enables the morsel-driven parallel scan over the snapshot's layer
  /// stack: the Read/Write snapshots are immutable, so workers share
  /// them lock-free. A parallel scan also reads the Trans-PDT from
  /// worker threads, so the transaction must not apply updates while one
  /// is being consumed (route updates through the Query-PDT, which the
  /// scan stack deliberately excludes, or drain the scan first).
  std::unique_ptr<BatchSource> Scan(std::vector<ColumnId> projection,
                                    const KeyBounds* bounds = nullptr,
                                    const ScanOptions& scan_opts = {}) const;
  /// The same snapshot scan as a morsel plan, feeding the parallel
  /// pipelines (exec/pipeline.h) — operator fragments then run inside
  /// the scan workers over the immutable layer stack. The update
  /// caveats of Scan() apply.
  MorselPlan PlanMorsels(std::vector<ColumnId> projection,
                         const KeyBounds* bounds = nullptr,
                         const ScanOptions& scan_opts = {}) const;
  StatusOr<Tuple> GetByKey(const std::vector<Value>& key) const;
  uint64_t RowCount() const;

  /// Algorithm 9. On conflict returns Status::Conflict and the
  /// transaction is aborted. The transaction is finished either way.
  Status Commit();

  /// Discards all buffered updates.
  void Abort();

  // ------------------------------------------------------------------
  // Query-PDT (paper footnote 5): a fourth PDT layer that shields a
  // running query from its own updates (Halloween protection). While
  // active, updates land in the Query-PDT but Scan/GetByKey still see
  // only stable ▷ Read ▷ Write ▷ Trans; EndQueryPdt() propagates the
  // buffered updates into the Trans-PDT.
  // ------------------------------------------------------------------

  /// Starts routing updates into a fresh Query-PDT.
  Status BeginQueryPdt();
  /// Folds the Query-PDT into the Trans-PDT and removes it.
  Status EndQueryPdt();
  bool query_pdt_active() const { return query_ != nullptr; }

  uint64_t id() const { return id_; }
  bool finished() const { return finished_; }
  const Pdt& trans_pdt() const { return *trans_; }

 private:
  friend class TxnManager;
  Transaction(TxnManager* mgr, uint64_t id, uint64_t start_time,
              std::shared_ptr<const Pdt> read_snapshot,
              std::shared_ptr<const Pdt> write_snapshot);

  // Layer stacks: scans see [read, write, trans]; update positioning
  // additionally sees the Query-PDT when one is active.
  std::vector<const Pdt*> Layers() const;
  std::vector<const Pdt*> UpdateLayers() const;
  // The PDT that receives updates (Query-PDT when active, else Trans).
  Pdt* UpdateTarget() const;
  StatusOr<std::vector<Value>> MergedSortKey(Rid rid) const;
  StatusOr<Rid> UpperBoundRid(const std::vector<Value>& key) const;
  StatusOr<Rid> FindRidByKey(const std::vector<Value>& key) const;
  uint64_t UpdateDomainRowCount() const;

  TxnManager* mgr_;
  uint64_t id_;
  uint64_t start_time_;
  std::shared_ptr<const Pdt> read_;   // shared Read-PDT snapshot
  std::shared_ptr<const Pdt> write_;  // Write-PDT snapshot (copy/shared)
  std::unique_ptr<Pdt> trans_;        // private Trans-PDT
  std::unique_ptr<Pdt> query_;        // optional Query-PDT (footnote 5)
  // Logical redo records for the WAL, in op order.
  std::vector<WalRecord> redo_;
  bool finished_ = false;
};

/// Tuning knobs of the transaction manager.
struct TxnManagerOptions {
  /// Propagate Write-PDT into the Read-PDT when it exceeds this many
  /// entries (the paper keeps the Write-PDT smaller than the CPU cache).
  size_t write_pdt_max_entries = 4096;
  /// Checkpoint the table when the Read-PDT exceeds this many entries.
  size_t read_pdt_max_entries = 1 << 20;
  /// Group commit (only meaningful with a WalWriter attached): commits
  /// publish their redo frames under the commit lock, then wait for
  /// durability together — one leader flushes and fsyncs the batch on
  /// behalf of every waiter. When false, each commit flushes and fsyncs
  /// its own frames before returning (the ablation baseline).
  bool group_commit = true;
  /// When several per-table managers share one WAL, they must also share
  /// a transaction-id source — concurrent transactions with colliding
  /// ids would be merged by replay. Database wires all its managers to
  /// one counter; a standalone manager can leave this null and allocate
  /// ids locally.
  std::atomic<uint64_t>* txn_id_counter = nullptr;
};

/// Manages transactions over one PDT-backed Table.
class TxnManager {
 public:
  /// `wal` is optional; when given, commits append logical redo records.
  TxnManager(Table* table, Wal* wal = nullptr, TxnManagerOptions opts = {});

  /// Starts a snapshot-isolated transaction.
  std::unique_ptr<Transaction> Begin();

  /// Attaches the durable sink that commits must reach before returning
  /// OK. The writer must outlive the manager (or be detached with
  /// nullptr). The WAL's durability watermark is not touched — load or
  /// truncate the Wal first so it knows which bytes are already on
  /// disk. A later flush or fsync failure is sticky (Wal::health()):
  /// the manager refuses every subsequent commit with that status,
  /// because it can no longer promise durability.
  void SetWalWriter(WalWriter* writer);

  /// The sticky WAL health status: OK until a flush or fsync failed.
  Status wal_status() const;

  /// Replays a WAL into the table (recovery): applies all updates of
  /// committed transactions, in commit order, skipping aborted ones.
  /// Data records addressed to other tables are ignored (several tables
  /// may share one log); begin/commit/abort markers are global. Runs at
  /// most once, and only on a pristine manager — a second call, or a
  /// call after any transaction activity, returns InvalidArgument
  /// instead of double-applying updates.
  Status Recover(const Wal& wal);

  /// Propagates Write-PDT -> Read-PDT and, if the Read-PDT is large,
  /// checkpoints the table. Requires no active transactions (returns
  /// InvalidArgument otherwise).
  Status PropagateAndMaybeCheckpoint();

  Table* table() const { return table_; }
  const Pdt& write_pdt() const { return *write_; }
  size_t active_transactions() const;
  uint64_t committed_count() const { return committed_count_; }
  uint64_t aborted_count() const { return aborted_count_; }

 private:
  friend class Transaction;

  // Commit path (Alg. 9), called under lock from Transaction::Commit.
  // On success `*durable_upto` is the WAL offset this commit must see
  // durable before acknowledging (0 = nothing to wait for).
  Status CommitLocked(Transaction* txn, uint64_t* durable_upto);
  // Blocks until the WAL is durable through `upto` (group-commit wait:
  // the first waiter becomes the flush leader).
  Status SyncWal(uint64_t upto);
  void FinishLocked(Transaction* txn);
  void ReleaseOverlapsLocked(Transaction* txn, size_t upto);

  // An entry of TZ: a committed, serialized Trans-PDT kept while
  // overlapping transactions still run.
  struct CommittedTxn {
    std::shared_ptr<Pdt> pdt;
    uint64_t commit_time;
    int refcnt;
  };

  Table* table_;
  Wal* wal_;
  TxnManagerOptions opts_;
  // Durable sink; the group-commit state itself lives in the (possibly
  // shared) Wal, so managers logging to one file agree on durability.
  WalWriter* writer_ = nullptr;
  bool recovered_ = false;
  mutable std::mutex mu_;
  std::unique_ptr<Pdt> write_;           // master Write-PDT
  std::shared_ptr<const Pdt> write_snapshot_;  // cache: copy of write_
  uint64_t write_snapshot_time_ = 0;     // logical time of that copy
  std::shared_ptr<const Pdt> read_view_;  // immutable view of Read-PDT
  uint64_t clock_ = 1;                   // logical commit clock
  uint64_t next_txn_id_ = 1;
  size_t active_ = 0;
  uint64_t committed_count_ = 0;
  uint64_t aborted_count_ = 0;
  std::deque<CommittedTxn> tz_;          // commit-ordered
};

}  // namespace pdtstore

#endif  // PDTSTORE_TXN_TXN_MANAGER_H_

// Quickstart: create an ordered columnar table, bulk-load it, run
// on-line updates through the PDT, scan the merged image, and checkpoint.
//
//   $ ./example_quickstart
#include <cstdio>

#include "db/database.h"

using namespace pdtstore;

namespace {
void PrintRows(const Table& table, const char* title) {
  std::printf("-- %s (%llu rows)\n", title,
              static_cast<unsigned long long>(table.RowCount()));
  std::vector<ColumnId> all(table.schema().num_columns());
  for (ColumnId i = 0; i < all.size(); ++i) all[i] = i;
  auto scan = table.Scan(all);
  auto rows = CollectRows(scan.get());
  for (const auto& t : *rows) std::printf("   %s\n", TupleToString(t).c_str());
}
}  // namespace

int main() {
  // A database with one ordered table: products(category, name, price),
  // kept sorted on (category, name).
  Database db;
  auto schema_or = Schema::Make({{"category", TypeId::kString},
                                 {"name", TypeId::kString},
                                 {"price", TypeId::kDouble}},
                                {0, 1});
  auto schema = std::make_shared<const Schema>(std::move(*schema_or));
  Table* products = *db.CreateTable("products", schema);

  // Bulk-load the stable image (must be sort-key ordered).
  Status st = products->Load({
      {"chairs", "recliner", 499.0},
      {"chairs", "stool", 29.0},
      {"tables", "coffee", 149.0},
      {"tables", "dining", 899.0},
  });
  if (!st.ok()) {
    std::printf("load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  PrintRows(*products, "after bulk load");

  // On-line updates buffer in the Positional Delta Tree; the stable
  // image on "disk" is never touched.
  (void)products->Insert({"chairs", "armchair", 249.0});
  (void)products->ModifyByKey({Value("tables"), Value("coffee")}, 2,
                              Value(129.0));
  (void)products->DeleteByKey({Value("chairs"), Value("stool")});
  PrintRows(*products, "after updates (merged on the fly)");
  std::printf("   PDT buffers %zu updates in %zu bytes\n",
              products->pdt()->EntryCount(),
              products->pdt()->MemoryBytes());

  // A scan that does not touch the sort key never reads it — the PDT
  // merges purely by position.
  auto price_scan = products->Scan({2});
  auto prices = CollectRows(price_scan.get());
  std::printf("-- price-only projection (no key I/O):");
  for (const auto& t : *prices) std::printf(" %s", t[0].ToString().c_str());
  std::printf("\n");

  // Checkpoint: rebuild the stable image, empty the delta.
  st = products->Checkpoint();
  std::printf("-- checkpoint: %s; delta now %zu entries\n",
              st.ToString().c_str(), products->pdt()->EntryCount());
  PrintRows(*products, "after checkpoint");
  return 0;
}

// HTAP scenario bench (the paper's central claim, measured end to end):
// N writers apply TPC-H refresh streams as cross-table atomic
// transactions (orders + lineitem in one commit, via MultiTxnManager's
// delta-chain write path with a durable group-commit WAL) while M
// readers run TPC-H pipeline kernels over the same tables, with
// background Write→Read propagation and periodic quiet-point
// checkpoints shrinking the PDT layers as ingest grows them. Reports,
// per (writers, readers) configuration, the HTAP SLO quantities:
// p50/p99/p999 query latency under ingest and ingest rows/sec under
// scans, plus the layer dynamics (peaks, merges, checkpoints).
//
//   bench_htap [--sf=0.05] [--configs=1x2,2x2,4x4] [--streams=3]
//              [--fraction=0.003] [--json=PATH]
//
// On a single core the reader/writer interleaving is time-sliced, so
// latency percentiles are upper bounds — the concurrency the numbers
// exist to show needs real cores (see DESIGN.md "HTAP harness").
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "db/database.h"
#include "tpch/htap_driver.h"
#include "util/file.h"

namespace pdtstore {
namespace bench {
namespace {

struct Config {
  int writers = 0;
  int readers = 0;
};

std::vector<Config> ParseConfigs(const std::string& s) {
  std::vector<Config> out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    std::string item = s.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t x = item.find('x');
    if (x != std::string::npos) {
      Config c;
      c.writers = std::atoi(item.substr(0, x).c_str());
      c.readers = std::atoi(item.substr(x + 1).c_str());
      if (c.writers > 0 && c.readers >= 0) out.push_back(c);
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int Run(int argc, char** argv) {
  const double sf = std::atof(
      FlagValue(argc, argv, "sf", "0.05").c_str());
  std::vector<Config> configs = ParseConfigs(
      FlagValue(argc, argv, "configs", "1x2,2x2,4x4"));
  const std::string json_path = FlagValue(argc, argv, "json", "");
  const int streams_per_writer = std::atoi(
      FlagValue(argc, argv, "streams", "3").c_str());
  const double fraction = std::atof(
      FlagValue(argc, argv, "fraction", "0.003").c_str());
  if (configs.empty() || sf <= 0 || streams_per_writer <= 0 ||
      fraction <= 0) {
    std::fprintf(stderr, "bad --configs / --sf / --streams / --fraction\n");
    return 1;
  }

  const std::string wal_dir =
      (std::filesystem::temp_directory_path() / "pdtstore_bench_htap")
          .string();
  std::filesystem::create_directories(wal_dir);

  JsonResultWriter json;
  std::printf(
      "%-12s %9s %9s %9s %11s %8s %8s %6s\n", "config", "p50_ms",
      "p99_ms", "p999_ms", "ingest_r/s", "queries", "merges", "ckpts");
  for (const Config& c : configs) {
    Database db;
    tpch::GenOptions gen;
    gen.scale_factor = sf;
    auto tables = tpch::GenerateInto(&db, gen, TableOptions{});
    if (!tables.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   tables.status().ToString().c_str());
      return 1;
    }
    Wal wal;
    const std::string wal_path =
        wal_dir + "/htap_w" + std::to_string(c.writers) + "_r" +
        std::to_string(c.readers) + ".wal";
    auto writer = WalWriter::Open(FileSystem::Default(), wal_path,
                                  /*truncate=*/true);
    if (!writer.ok()) {
      std::fprintf(stderr, "open %s: %s\n", wal_path.c_str(),
                   writer.status().ToString().c_str());
      return 1;
    }

    tpch::HtapOptions opts;
    opts.writers = c.writers;
    opts.readers = c.readers;
    opts.streams_per_writer = streams_per_writer;
    opts.stream_fraction = fraction;
    opts.orders_per_txn = 4;
    opts.maintenance_interval_ms = 25;
    opts.checkpoint_read_entries = 4096;
    auto report =
        tpch::RunHtapScenario(gen, &*tables, &wal, writer->get(), opts);
    if (!report.ok()) {
      std::fprintf(stderr, "scenario w%d r%d: %s\n", c.writers, c.readers,
                   report.status().ToString().c_str());
      return 1;
    }

    const std::string name = "htap_w" + std::to_string(c.writers) + "_r" +
                             std::to_string(c.readers);
    std::printf("%-12s %9.3f %9.3f %9.3f %11.0f %8llu %8llu %6llu\n",
                name.c_str(), report->query_latency.p50_ms,
                report->query_latency.p99_ms, report->query_latency.p999_ms,
                report->ingest_rows_per_sec,
                static_cast<unsigned long long>(report->queries_run),
                static_cast<unsigned long long>(report->background_merges),
                static_cast<unsigned long long>(report->checkpoints));
    json.Metric(name, "query_p50_ms", report->query_latency.p50_ms);
    json.Metric(name, "query_p99_ms", report->query_latency.p99_ms);
    json.Metric(name, "query_p999_ms", report->query_latency.p999_ms);
    json.Metric(name, "query_max_ms", report->query_latency.max_ms);
    json.Metric(name, "queries_run",
                static_cast<double>(report->queries_run));
    json.Metric(name, "ingest_rows_per_sec", report->ingest_rows_per_sec);
    json.Metric(name, "rows_ingested",
                static_cast<double>(report->rows_ingested));
    json.Metric(name, "groups_committed",
                static_cast<double>(report->groups_committed));
    json.Metric(name, "conflict_retries",
                static_cast<double>(report->conflict_retries));
    json.Metric(name, "txns_committed",
                static_cast<double>(report->committed));
    json.Metric(name, "background_merges",
                static_cast<double>(report->background_merges));
    json.Metric(name, "checkpoints",
                static_cast<double>(report->checkpoints));
    json.Metric(name, "checkpoint_stall_ms_max",
                report->checkpoint_stall_ms_max);
    json.Metric(name, "read_pdt_peak",
                static_cast<double>(report->read_pdt_peak));
    json.Metric(name, "write_pdt_peak",
                static_cast<double>(report->write_pdt_peak));
    json.Metric(name, "merge_pending_peak",
                static_cast<double>(report->merge_pending_peak));
    json.Metric(name, "wal_syncs", static_cast<double>(report->wal_syncs));
    json.Metric(name, "writer_wall_s", report->writer_wall_s);
    json.Metric(name, "wall_s", report->wall_s);
  }

  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  return pdtstore::bench::Run(argc, argv);
}

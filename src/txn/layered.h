// Internal helpers shared by the single- and multi-table transaction
// managers and Table::Scan: resolving sort keys / full tuples through a
// stack of PDT layers (bottom..top), walking RIDs downward through each
// layer's SID domain, and the serial-or-parallel layered merge scan.
#ifndef PDTSTORE_TXN_LAYERED_H_
#define PDTSTORE_TXN_LAYERED_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/parallel_scan.h"
#include "exec/zone_prune.h"
#include "pdt/merge_scan.h"
#include "pdt/pdt.h"
#include "storage/column_store.h"

namespace pdtstore {
namespace internal {

/// Sort key of the merged tuple at `rid` (top-domain position). SK
/// columns are never modified in place, so only inserts redirect the key
/// source.
inline StatusOr<std::vector<Value>> LayeredSortKey(
    const ColumnStore& store, const std::vector<const Pdt*>& layers,
    Rid rid) {
  Rid cur = rid;
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    Pdt::RidLookup lk = (*it)->LookupRid(cur);
    if (lk.is_insert) {
      return (*it)->value_space().GetInsertSortKey(lk.insert_offset);
    }
    cur = lk.sid;
  }
  return store.GetSortKey(cur);
}

/// Full merged tuple at `rid`, honoring modify entries with higher layers
/// taking precedence.
inline StatusOr<Tuple> LayeredTuple(const ColumnStore& store,
                                    const std::vector<const Pdt*>& layers,
                                    Rid rid) {
  Rid cur = rid;
  std::vector<std::pair<ColumnId, Value>> mods;  // top-most first
  for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
    const Pdt* layer = *it;
    Pdt::RidLookup lk = layer->LookupRid(cur);
    if (lk.is_insert) {
      Tuple t = layer->value_space().GetInsertTuple(lk.insert_offset);
      for (auto mit = mods.rbegin(); mit != mods.rend(); ++mit) {
        t[mit->first] = mit->second;
      }
      return t;
    }
    for (auto [col, off] : lk.mods) {
      mods.emplace_back(col, layer->value_space().GetModifyValue(col, off));
    }
    cur = lk.sid;
  }
  PDT_ASSIGN_OR_RETURN(Tuple t, store.GetTuple(cur));
  for (auto mit = mods.rbegin(); mit != mods.rend(); ++mit) {
    t[mit->first] = mit->second;
  }
  return t;
}

/// Merged row count of a layer stack over `stable_rows`.
inline uint64_t LayeredRowCount(uint64_t stable_rows,
                                const std::vector<const Pdt*>& layers) {
  int64_t delta = 0;
  for (const Pdt* layer : layers) delta += layer->TotalDelta();
  return static_cast<uint64_t>(static_cast<int64_t>(stable_rows) + delta);
}

/// BatchSource wrapper that keeps a set of PDT layers alive exactly as
/// long as the wrapped source. Table-level (non-transactional) scans
/// pin the Read-PDT this way: a background merge's ReplacePdt then
/// never frees the layer under a running serial cursor.
class PinnedLayerSource : public BatchSource {
 public:
  PinnedLayerSource(std::unique_ptr<BatchSource> inner,
                    std::vector<std::shared_ptr<const Pdt>> pins)
      : inner_(std::move(inner)), pins_(std::move(pins)) {}
  StatusOr<bool> Next(Batch* out, size_t max_rows) override {
    return inner_->Next(out, max_rows);
  }

 private:
  std::unique_ptr<BatchSource> inner_;
  std::vector<std::shared_ptr<const Pdt>> pins_;
};

/// Plans the merge scan over a snapshot layer stack: the serial merge
/// cursor at one thread, or morsels + a per-morsel source factory for
/// the parallel pipelines — the shared planning step of the transaction
/// Scan() paths and Table::PlanMorsels. A zero `morsel_rows` auto-tunes
/// the granularity from the chunk size and the stack's delta entry
/// density (AutoMorselRows). All layers must stay unmodified while the
/// plan's sources are consumed.
///
/// `pins` carries shared ownership of any `layers` whose lifetime is
/// not otherwise tied to the plan's consumer: the serial source is
/// wrapped to hold them and the parallel factory captures them, so the
/// layers live as long as anything built from this plan. Transaction
/// scans pass none (the transaction object owns its snapshot for the
/// scan's duration); Table::PlanMorsels pins the Read-PDT against a
/// concurrent background-merge ReplacePdt.
inline MorselPlan LayeredMorselPlan(
    const ColumnStore& store, std::vector<const Pdt*> layers,
    std::vector<ColumnId> projection, std::vector<SidRange> ranges,
    const ScanOptions& scan_opts,
    std::vector<std::shared_ptr<const Pdt>> pins = {}) {
  MorselPlan plan;
  plan.options = scan_opts;
  size_t entries = 0;
  for (const Pdt* layer : layers) entries += layer->EntryCount();
  // Zone-map pruning first, so skipped chunks shape the morsel split
  // (dead chunks are never fetched — serial or parallel).
  ranges = PruneRangesWithZoneMaps(store, layers, std::move(ranges),
                                   scan_opts.zone_filters, projection);
  if (!ResolveMorselPlan(&ranges, store.num_rows(),
                         store.options().chunk_rows, entries, &plan)) {
    if (ranges.size() == 1 && ranges[0].begin == ranges[0].end) {
      // Everything pruned: MakeMergeScan would start the layer cursors
      // at position 0 (the stable scan never emits a batch to re-seek
      // on), so build the one empty-range source positioned at the scan
      // end directly — it emits exactly the trailing inserts.
      plan.serial = MakeMorselMergeScan(store, layers, projection,
                                        ranges[0], /*final_morsel=*/true);
    } else {
      plan.serial = MakeMergeScan(store, std::move(layers),
                                  std::move(projection), std::move(ranges));
    }
    if (!pins.empty()) {
      plan.serial = std::make_unique<PinnedLayerSource>(
          std::move(plan.serial), std::move(pins));
    }
    return plan;
  }
  const ColumnStore* store_ptr = &store;
  plan.factory =
      [store_ptr, layers = std::move(layers),
       projection = std::move(projection), pins = std::move(pins)](
          size_t, const SidRange& morsel, bool final_morsel) {
        return MakeMorselMergeScan(*store_ptr, layers, projection, morsel,
                                   final_morsel);
      };
  return plan;
}

/// Merge scan over a snapshot layer stack, serial or morsel-parallel
/// according to `scan_opts` — the shared implementation of the
/// transaction Scan() paths. All layers must stay unmodified while the
/// returned source is consumed.
inline std::unique_ptr<BatchSource> LayeredScan(
    const ColumnStore& store, std::vector<const Pdt*> layers,
    std::vector<ColumnId> projection, std::vector<SidRange> ranges,
    const ScanOptions& scan_opts) {
  return MakeScanSource(LayeredMorselPlan(store, std::move(layers),
                                          std::move(projection),
                                          std::move(ranges), scan_opts));
}

}  // namespace internal
}  // namespace pdtstore

#endif  // PDTSTORE_TXN_LAYERED_H_

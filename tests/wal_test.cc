// WAL unit tests: record encode/replay roundtrips for every record kind
// and value type, truncation, file persistence, and corruption handling —
// including the recovery split between a torn tail (truncated, prefix
// kept) and mid-log corruption (hard error).
#include "txn/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace pdtstore {
namespace {

// A three-record committed log written to `path`; returns its size.
uint64_t WriteSampleLog(const std::string& path) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogInsert(1, "t", {int64_t{1}, std::string("one")});
  wal.LogCommit(1);
  EXPECT_TRUE(wal.WriteToFile(path).ok());
  return wal.SizeBytes();
}

std::string ReadAll(const std::string& path) {
  std::string data;
  EXPECT_TRUE(FileSystem::Default()->ReadFileToString(path, &data).ok());
  return data;
}

void WriteAll(const std::string& path, const std::string& data) {
  auto f = FileSystem::Default()->NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(data).ok());
  ASSERT_TRUE((*f)->Close().ok());
}

TEST(WalTest, RoundtripsAllRecordKinds) {
  Wal wal;
  wal.LogBegin(7);
  wal.LogInsert(7, "t", {int64_t{42}, 3.5, std::string("hi")});
  wal.LogModify(7, "t", {Value(42)}, 2, Value("patched"));
  wal.LogDelete(7, "t", {Value(42)});
  wal.LogCommit(7);
  wal.LogAbort(8);
  wal.LogCheckpoint("t");
  EXPECT_EQ(wal.RecordCount(), 7u);

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& r) {
                   records.push_back(r);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(records.size(), 7u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(records[0].txn_id, 7u);
  EXPECT_EQ(records[1].type, WalRecordType::kInsert);
  ASSERT_EQ(records[1].tuple.size(), 3u);
  EXPECT_EQ(records[1].tuple[0], Value(42));
  EXPECT_DOUBLE_EQ(records[1].tuple[1].AsDouble(), 3.5);
  EXPECT_EQ(records[1].tuple[2], Value("hi"));
  EXPECT_EQ(records[2].type, WalRecordType::kModify);
  EXPECT_EQ(records[2].column, 2u);
  EXPECT_EQ(records[2].value, Value("patched"));
  EXPECT_EQ(records[3].type, WalRecordType::kDelete);
  EXPECT_EQ(records[3].key[0], Value(42));
  EXPECT_EQ(records[4].type, WalRecordType::kCommit);
  EXPECT_EQ(records[5].type, WalRecordType::kAbort);
  EXPECT_EQ(records[5].txn_id, 8u);
  EXPECT_EQ(records[6].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[6].table, "t");
}

TEST(WalTest, LsnsAreMonotonic) {
  Wal wal;
  uint64_t a = wal.LogBegin(1);
  uint64_t b = wal.LogCommit(1);
  uint64_t c = wal.LogBegin(2);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(WalTest, TruncateEmptiesLog) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogCommit(1);
  wal.Truncate();
  EXPECT_EQ(wal.SizeBytes(), 0u);
  EXPECT_EQ(wal.RecordCount(), 0u);
  int seen = 0;
  ASSERT_TRUE(wal.Replay([&](const WalRecord&) {
                   ++seen;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, 0);
}

TEST(WalTest, FileRoundtrip) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogInsert(1, "accounts", {std::string("alice"), int64_t{100}});
  wal.LogCommit(1);
  std::string path = ::testing::TempDir() + "/wal_roundtrip.bin";
  ASSERT_TRUE(wal.WriteToFile(path).ok());
  Wal loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.SizeBytes(), wal.SizeBytes());
  EXPECT_EQ(loaded.RecordCount(), 3u);
}

TEST(WalTest, MissingFileReportsIOError) {
  Wal wal;
  EXPECT_EQ(wal.LoadFromFile("/nonexistent/path/wal.bin").code(),
            StatusCode::kIOError);
}

TEST(WalTest, ReplayCallbackErrorPropagates) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogCommit(1);
  Status st = wal.Replay([](const WalRecord& r) {
    if (r.type == WalRecordType::kCommit) {
      return Status::Internal("stop");
    }
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(WalTest, NegativeAndExtremeValuesRoundtrip) {
  Wal wal;
  wal.LogInsert(1, "t",
                {int64_t{-1}, int64_t{INT64_MIN}, int64_t{INT64_MAX},
                 -0.0, 1e-300, std::string()});
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& r) {
                   records.push_back(r);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].tuple[0], Value(int64_t{-1}));
  EXPECT_EQ(records[0].tuple[1], Value(int64_t{INT64_MIN}));
  EXPECT_EQ(records[0].tuple[2], Value(int64_t{INT64_MAX}));
  EXPECT_DOUBLE_EQ(records[0].tuple[3].AsDouble(), -0.0);
  EXPECT_DOUBLE_EQ(records[0].tuple[4].AsDouble(), 1e-300);
  EXPECT_EQ(records[0].tuple[5], Value(""));
}

TEST(WalTest, ReplayReappendReproducesIdenticalBytes) {
  // The frame codec is canonical: decoding every record and appending
  // them into a fresh log reproduces the original bytes exactly, so a
  // recovered log continues at precisely the old offsets.
  Wal wal;
  wal.LogBegin(3);
  wal.LogInsert(3, "t", {int64_t{-9}, 2.25, std::string("x")});
  wal.LogModify(3, "t", {Value(int64_t{-9})}, 1, Value(7.5));
  wal.LogDelete(3, "t", {Value(int64_t{-9})});
  wal.LogCommit(3);
  wal.LogCheckpoint("t");
  std::string a = ::testing::TempDir() + "/wal_bytes_a.bin";
  std::string b = ::testing::TempDir() + "/wal_bytes_b.bin";
  ASSERT_TRUE(wal.WriteToFile(a).ok());
  Wal rebuilt;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& r) {
                   rebuilt.Append(r);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_TRUE(rebuilt.WriteToFile(b).ok());
  EXPECT_EQ(ReadAll(a), ReadAll(b));
}

TEST(WalTest, RecoverFromMissingFileIsEmptyLog) {
  Wal wal;
  wal.LogBegin(9);  // stale contents must be dropped by recovery
  auto stats =
      wal.RecoverFrom(FileSystem::Default(),
                      ::testing::TempDir() + "/no_such_wal.bin");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 0u);
  EXPECT_EQ(stats->valid_bytes, 0u);
  EXPECT_FALSE(stats->tail_truncated);
  EXPECT_EQ(wal.RecordCount(), 0u);
}

TEST(WalTest, RecoverFromEmptyFileIsEmptyLog) {
  std::string path = ::testing::TempDir() + "/wal_empty.bin";
  WriteAll(path, "");
  Wal wal;
  auto stats = wal.RecoverFrom(FileSystem::Default(), path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 0u);
  EXPECT_FALSE(stats->tail_truncated);
}

TEST(WalTest, RecoverTruncatesTornTail) {
  // Cut the final frame short — the torn write a crash mid-append
  // leaves. Recovery keeps the intact prefix and trims the file.
  std::string path = ::testing::TempDir() + "/wal_torn.bin";
  uint64_t full = WriteSampleLog(path);
  std::string data = ReadAll(path);
  WriteAll(path, data.substr(0, data.size() - 5));

  Wal wal;
  auto stats = wal.RecoverFrom(FileSystem::Default(), path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->tail_truncated);
  EXPECT_EQ(stats->records, 2u);  // begin + insert survive; commit torn
  EXPECT_LT(stats->valid_bytes, full);
  EXPECT_EQ(wal.SizeBytes(), stats->valid_bytes);
  // The file itself was truncated to the valid prefix.
  EXPECT_EQ(ReadAll(path).size(), stats->valid_bytes);
  // And the recovered log replays cleanly (strict scan passes now).
  size_t seen = 0;
  ASSERT_TRUE(wal.Replay([&](const WalRecord&) {
                   ++seen;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, 2u);
}

TEST(WalTest, RecoverTreatsCorruptFinalFrameAsTornTail) {
  // A bit flip inside the LAST frame is indistinguishable from a torn
  // write of that frame, so it is truncated, not fatal.
  std::string path = ::testing::TempDir() + "/wal_last_flip.bin";
  WriteSampleLog(path);
  std::string data = ReadAll(path);
  data[data.size() - 1] ^= 0x40;
  WriteAll(path, data);

  Wal wal;
  auto stats = wal.RecoverFrom(FileSystem::Default(), path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(stats->tail_truncated);
  EXPECT_EQ(stats->records, 2u);
}

TEST(WalTest, RecoverReportsMidLogCorruption) {
  // A bad frame with valid data after it is NOT a crash artifact —
  // recovery must refuse rather than silently drop committed records.
  std::string path = ::testing::TempDir() + "/wal_midflip.bin";
  WriteSampleLog(path);
  std::string data = ReadAll(path);
  data[20] ^= 0x01;  // inside the first frame's payload
  WriteAll(path, data);

  Wal wal;
  auto stats = wal.RecoverFrom(FileSystem::Default(), path);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, RecoverRejectsRelocatedFrames) {
  // Frames carry their own offset in the checksummed LSN: a log whose
  // bytes were shifted (e.g. a hole dropped by a broken copy) has valid
  // CRCs but wrong positions, and must be rejected, not replayed.
  std::string a = ::testing::TempDir() + "/wal_reloc_a.bin";
  std::string path = ::testing::TempDir() + "/wal_reloc.bin";
  WriteSampleLog(a);
  std::string data = ReadAll(a);
  // Drop the first frame: the remaining frames' LSNs no longer match
  // their new offsets.
  uint32_t len0 = 0;
  std::memcpy(&len0, data.data(), sizeof(len0));
  WriteAll(path, data.substr(16 + len0));

  Wal wal;
  auto stats = wal.RecoverFrom(FileSystem::Default(), path);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, RecoverRejectsInsaneFrameLength) {
  // A length prefix beyond the sanity bound with data after it reads as
  // corruption, not as a (2GiB) torn tail.
  std::string path = ::testing::TempDir() + "/wal_len.bin";
  WriteSampleLog(path);
  std::string data = ReadAll(path);
  uint32_t huge = 0x7FFFFFFF;
  std::memcpy(data.data(), &huge, sizeof(huge));
  WriteAll(path, data);

  Wal wal;
  auto stats = wal.RecoverFrom(FileSystem::Default(), path);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, StrictLoadRejectsTornTail) {
  // LoadFromFile is the strict path: a torn tail that RecoverFrom would
  // tolerate is an error here.
  std::string path = ::testing::TempDir() + "/wal_strict.bin";
  WriteSampleLog(path);
  std::string data = ReadAll(path);
  WriteAll(path, data.substr(0, data.size() - 3));
  Wal wal;
  EXPECT_EQ(wal.LoadFromFile(path).code(), StatusCode::kCorruption);
}

TEST(WalTest, CheckpointRecordMidLogReplaysInOrder) {
  Wal wal;
  wal.LogBegin(1);
  wal.LogInsert(1, "t", {int64_t{1}});
  wal.LogCommit(1);
  wal.LogCheckpoint("t");
  wal.LogBegin(2);
  wal.LogInsert(2, "t", {int64_t{2}});
  wal.LogCommit(2);
  std::vector<WalRecordType> types;
  ASSERT_TRUE(wal.Replay([&](const WalRecord& r) {
                   types.push_back(r.type);
                   return Status::OK();
                 })
                  .ok());
  ASSERT_EQ(types.size(), 7u);
  EXPECT_EQ(types[3], WalRecordType::kCheckpoint);
  EXPECT_EQ(types[6], WalRecordType::kCommit);
}

TEST(WalTest, TakeUnflushedHandsOutEachSuffixOnce) {
  Wal wal;
  wal.LogBegin(1);
  uint64_t end = 0;
  std::string first = wal.TakeUnflushed(&end);
  EXPECT_EQ(first.size(), end);
  EXPECT_EQ(end, wal.SizeBytes());
  // Nothing new appended: the second take is empty.
  EXPECT_TRUE(wal.TakeUnflushed(&end).empty());
  wal.LogCommit(1);
  std::string second = wal.TakeUnflushed(&end);
  EXPECT_FALSE(second.empty());
  EXPECT_EQ(first.size() + second.size(), wal.SizeBytes());
  EXPECT_EQ(end, wal.SizeBytes());
}

}  // namespace
}  // namespace pdtstore

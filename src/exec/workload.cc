#include "exec/workload.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace pdtstore {

QueryTicket::~QueryTicket() { mgr_->Done(); }

WorkloadManager::WorkloadManager(WorkloadOptions options)
    : options_(std::move(options)), pool_(options_.process_memory_cap) {}

WorkloadManager::~WorkloadManager() = default;

WorkloadManager& WorkloadManager::Global() {
  static WorkloadManager mgr;
  return mgr;
}

int WorkloadManager::ResolvedMaxConcurrent() const {
  if (options_.max_concurrent > 0) return options_.max_concurrent;
  return 2 * ThreadPool::DefaultThreads();
}

void WorkloadManager::Configure(const WorkloadOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  pool_.set_capacity(options_.process_memory_cap);
  cv_.notify_all();  // a raised concurrency cap may unblock waiters
}

StatusOr<std::shared_ptr<QueryTicket>> WorkloadManager::Admit(
    std::string label) {
  uint64_t seq;
  size_t per_query_cap;
  std::string spill_dir;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const size_t cap = static_cast<size_t>(ResolvedMaxConcurrent());
    if (active_ >= cap && waiters_.size() >= options_.max_queued) {
      ++rejected_;
      return Status::ResourceExhausted(
          "admission queue full (" + std::to_string(active_) +
          " active, " + std::to_string(waiters_.size()) +
          " queued) rejecting query '" + label + "'");
    }
    seq = next_seq_++;
    if (active_ >= cap) {
      waiters_.push_back(seq);
      queued_peak_ = std::max(queued_peak_, waiters_.size());
      // Strict FIFO: a waiter runs only when it is the oldest waiter
      // AND a slot is free. notify_all below wakes everyone; only the
      // head's predicate passes, so admission order is arrival order.
      cv_.wait(lock, [&] {
        return waiters_.front() == seq &&
               active_ < static_cast<size_t>(ResolvedMaxConcurrent());
      });
      waiters_.pop_front();
      // The next head may also have a free slot (e.g. the cap was
      // raised): keep the wave going.
      cv_.notify_all();
    }
    ++active_;
    ++admitted_;
    // Snapshot under the lock: Configure may swap options_ concurrently.
    per_query_cap = options_.per_query_memory_cap;
    spill_dir = options_.spill_dir;
  }
  auto budget = std::make_shared<MemoryBudget>(std::move(label),
                                               per_query_cap, &pool_);
  return std::shared_ptr<QueryTicket>(
      new QueryTicket(this, seq, std::move(budget), std::move(spill_dir)));
}

void WorkloadManager::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  --active_;
  ++completed_;
  cv_.notify_all();
}

WorkloadStats WorkloadManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkloadStats s;
  s.admitted = admitted_;
  s.completed = completed_;
  s.rejected = rejected_;
  s.active = active_;
  s.queued = waiters_.size();
  s.queued_peak = queued_peak_;
  s.memory_used = pool_.used();
  s.memory_peak = pool_.peak();
  s.memory_cap = pool_.capacity();
  return s;
}

}  // namespace pdtstore

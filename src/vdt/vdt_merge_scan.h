// Value-based MergeScan: MergeUnion[SK](Scan(ins),
// MergeDiff[SK](Scan(stable), Scan(del))) — the physical plan the paper
// gives for VDT table scans. The stable scan is forced to read the SK
// columns in addition to the user projection (the extra I/O of Fig. 19
// plots 2/5), and every row pays a key comparison (the extra CPU of
// plots 1/3/4).
#ifndef PDTSTORE_VDT_VDT_MERGE_SCAN_H_
#define PDTSTORE_VDT_VDT_MERGE_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "columnstore/batch.h"
#include "storage/column_store.h"
#include "storage/sparse_index.h"
#include "vdt/vdt.h"

namespace pdtstore {

/// Inclusive key-prefix bounds for a restricted scan (empty = unbounded).
struct KeyBounds {
  std::vector<Value> lo;
  std::vector<Value> hi;
};

/// Merging scan over stable storage + one VDT. Emits only the user
/// projection, in SK order, with sequential RIDs (the VDT has no notion
/// of stable positions — another contrast with the PDT).
class VdtMergeScan : public BatchSource {
 public:
  /// `ranges` restricts the stable scan (from the sparse index); `bounds`
  /// restricts which VDT entries participate (the key-space counterpart).
  ///
  /// `fence_lo` (inclusive) / `fence_hi` (exclusive) are full-SK morsel
  /// fences for parallel scans: the VDT has no positions, so a morsel of
  /// stable SIDs [lo, hi) owns exactly the differential entries with keys
  /// in [SK(lo), SK(hi)) — fences make adjacent morsels partition the
  /// insert/delete maps with no duplicate and no loss, on top of (not
  /// instead of) the user-visible `bounds`. Empty = unfenced on that side.
  VdtMergeScan(const ColumnStore* store, const Vdt* vdt,
               std::vector<ColumnId> projection,
               std::vector<SidRange> ranges = {}, KeyBounds bounds = {},
               std::vector<Value> fence_lo = {},
               std::vector<Value> fence_hi = {});

  StatusOr<bool> Next(Batch* out, size_t max_rows) override;

 private:
  // Compares the SK of stable row `row` in buf_ against a key vector.
  int CompareRowToKey(size_t row, const std::vector<Value>& key) const;
  void EmitStableRow(Batch* out, size_t row);
  void EmitInsertTuple(Batch* out, const Tuple& t);
  bool InsertInBounds(const std::vector<Value>& key) const;

  const ColumnStore* store_;
  const Vdt* vdt_;
  std::vector<ColumnId> projection_;       // user projection
  std::vector<ColumnId> scan_projection_;  // user projection + SK columns
  std::vector<int> sk_batch_idx_;          // SK positions in scan batches
  std::vector<int> out_batch_idx_;         // projection positions in scan
  KeyBounds bounds_;
  std::vector<Value> fence_lo_;            // morsel fence, inclusive
  std::vector<Value> fence_hi_;            // morsel fence, exclusive

  std::unique_ptr<BatchSource> stable_;
  Batch proto_;  // output layout, reused via ResetLike
  Batch buf_;
  size_t buf_off_ = 0;
  bool input_done_ = false;
  Vdt::InsertMap::const_iterator ins_it_;
  Vdt::DeleteSet::const_iterator del_it_;
  Rid out_rid_ = 0;
};

}  // namespace pdtstore

#endif  // PDTSTORE_VDT_VDT_MERGE_SCAN_H_

#include "exec/shared_scan.h"

#include <algorithm>

#include "exec/pipeline.h"
#include "util/mem_budget.h"
#include "util/thread_pool.h"

namespace pdtstore {

// ---------------------------------------------------------------------
// SharedScanConsumer.
// ---------------------------------------------------------------------

SharedScanConsumer::~SharedScanConsumer() { stream_->Detach(id_); }

StatusOr<bool> SharedScanConsumer::NextUnit(SharedMorselUnit* out) {
  return stream_->NextUnitFor(id_, out);
}

size_t SharedScanConsumer::num_morsels() const {
  return stream_->morsels_.size();
}

size_t SharedScanConsumer::batch_rows() const {
  return stream_->batch_rows_;
}

// ---------------------------------------------------------------------
// SharedScanStream.
// ---------------------------------------------------------------------

SharedScanStream::SharedScanStream(std::vector<SidRange> morsels,
                                   MorselSourceFactory factory,
                                   size_t batch_rows, size_t num_workers,
                                   uint64_t creator_token)
    : morsels_(std::move(morsels)),
      factory_(std::move(factory)),
      batch_rows_(batch_rows == 0 ? kDefaultBatchSize : batch_rows),
      num_workers_(std::min(num_workers, morsels_.size())),
      token_(creator_token),
      ready_cap_(std::max<size_t>(2 * (num_workers_ + 1), 4)) {}

SharedScanStream::~SharedScanStream() = default;

void SharedScanStream::Start() {
  // Worker tasks own the stream via shared_ptr: a stream abandoned by
  // every consumer stays alive until queued tasks get their start check.
  std::shared_ptr<SharedScanStream> self = shared_from_this();
  for (size_t i = 0; i < num_workers_; ++i) {
    ThreadPool::Global().Submit(token_, [self] { self->RunWorker(); });
  }
}

std::unique_ptr<SharedScanConsumer> SharedScanStream::Attach() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = next_consumer_id_++;
  ConsumerState& cs = consumers_[id];
  // Complete the circle: morsels claimed before this attach and no
  // longer in flight were already delivered (or retired) without us —
  // re-run them privately. In-flight morsels deliver to us on
  // completion; unclaimed morsels flow through the shared queue.
  for (size_t m = 0; m < next_claim_; ++m) {
    if (in_flight_.find(m) == in_flight_.end()) cs.backlog.push_back(m);
  }
  for (auto& [m, inf] : in_flight_) inf.pending.push_back(id);
  return std::unique_ptr<SharedScanConsumer>(
      new SharedScanConsumer(shared_from_this(), id));
}

bool SharedScanStream::ExhaustedForNewcomers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abort_ || next_claim_ >= morsels_.size();
}

bool SharedScanStream::AnyConsumerHasRoom() const {
  for (const auto& [id, cs] : consumers_) {
    if (cs.ready.size() < ready_cap_) return true;
  }
  return false;
}

void SharedScanStream::RunWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (abort_) return;  // stream already over: don't touch the factory
    ++active_workers_;
  }
  while (true) {
    size_t m;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Claim gate: pause while every rider's buffer is full (the
      // train waits for the slowest consumer only until shedding kicks
      // in — see delivery). Claiming and gating are atomic, so a
      // claimed morsel is always actively being merged.
      worker_cv_.wait(lock, [this] {
        return abort_ || next_claim_ >= morsels_.size() ||
               AnyConsumerHasRoom();
      });
      if (abort_ || next_claim_ >= morsels_.size()) break;
      m = next_claim_++;
      InFlight& inf = in_flight_[m];
      inf.pending.reserve(consumers_.size());
      for (const auto& [id, cs] : consumers_) inf.pending.push_back(id);
    }
    if (!ProcessShared(m)) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  --active_workers_;
}

bool SharedScanStream::ProcessShared(size_t m) {
  std::unique_ptr<BatchSource> src =
      factory_(m, morsels_[m], m + 1 == morsels_.size());
  std::vector<std::shared_ptr<const Batch>> batches;
  while (true) {
    auto b = std::make_shared<Batch>();
    StatusOr<bool> more = src->Next(b.get(), batch_rows_);
    if (!more.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_.ok()) error_ = more.status();
      abort_ = true;
      consumer_cv_.notify_all();
      worker_cv_.notify_all();
      return false;
    }
    if (!*more) break;
    batches.push_back(std::move(b));
    std::lock_guard<std::mutex> lock(mu_);
    if (abort_) return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (abort_) return false;
  auto it = in_flight_.find(m);
  if (it != in_flight_.end()) {
    for (uint32_t id : it->second.pending) {
      auto cit = consumers_.find(id);
      if (cit == consumers_.end()) continue;  // rider detached meanwhile
      ConsumerState& cs = cit->second;
      if (cs.ready.size() >= ready_cap_) {
        // Straggler shedding: this rider is too far behind the train —
        // it re-merges the morsel itself later, so the stream's buffered
        // footprint stays bounded no matter how slow one query is.
        cs.backlog.push_back(m);
      } else {
        cs.ready.push_back(SharedMorselUnit{m, batches});
      }
    }
    in_flight_.erase(it);
  }
  consumer_cv_.notify_all();
  return true;
}

StatusOr<SharedMorselUnit> SharedScanStream::ProcessPrivate(size_t m) {
  std::unique_ptr<BatchSource> src =
      factory_(m, morsels_[m], m + 1 == morsels_.size());
  SharedMorselUnit unit;
  unit.morsel = m;
  while (true) {
    auto b = std::make_shared<Batch>();
    PDT_ASSIGN_OR_RETURN(bool more, src->Next(b.get(), batch_rows_));
    if (!more) break;
    unit.batches.push_back(std::move(b));
  }
  return unit;
}

StatusOr<bool> SharedScanStream::NextUnitFor(uint32_t id,
                                             SharedMorselUnit* out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto cit = consumers_.find(id);
  if (cit == consumers_.end()) {
    return Status::Internal("shared scan consumer already detached");
  }
  ConsumerState& cs = cit->second;  // std::map: reference stays valid
  while (true) {
    if (!error_.ok()) return error_;
    if (!cs.ready.empty()) {
      *out = std::move(cs.ready.front());
      cs.ready.pop_front();
      ++cs.consumed;
      worker_cv_.notify_all();  // room opened up
      return true;
    }
    if (cs.consumed + cs.backlog.size() >= morsels_.size() &&
        cs.backlog.empty()) {
      return false;  // every morsel delivered and consumed
    }
    // Would block: help the shared flow first (benefits every rider),
    // then fall back to the private backlog. Helpers skip the claim
    // gate — the scan's progress never depends on pool workers.
    if (!abort_ && next_claim_ < morsels_.size()) {
      const size_t m = next_claim_++;
      InFlight& inf = in_flight_[m];
      inf.pending.reserve(consumers_.size());
      for (const auto& [cid, c] : consumers_) inf.pending.push_back(cid);
      lock.unlock();
      ProcessShared(m);
      lock.lock();
      continue;  // our copy of the unit (or the error) is now visible
    }
    if (!cs.backlog.empty()) {
      const size_t m = cs.backlog.front();
      cs.backlog.pop_front();
      lock.unlock();
      StatusOr<SharedMorselUnit> unit = ProcessPrivate(m);
      if (!unit.ok()) return unit.status();  // fails this rider only
      *out = std::move(*unit);
      lock.lock();
      ++cs.consumed;
      return true;
    }
    if (abort_) {
      return error_.ok()
                 ? Status::Internal("shared scan stream aborted")
                 : error_;
    }
    consumer_cv_.wait(lock);
  }
}

void SharedScanStream::Detach(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  consumers_.erase(id);
  for (auto& [m, inf] : in_flight_) {
    inf.pending.erase(
        std::remove(inf.pending.begin(), inf.pending.end(), id),
        inf.pending.end());
  }
  if (consumers_.empty()) abort_ = true;  // nobody left to deliver to
  consumer_cv_.notify_all();
  worker_cv_.notify_all();
}

// ---------------------------------------------------------------------
// SharedScanHub.
// ---------------------------------------------------------------------

SharedScanHub& SharedScanHub::Global() {
  static SharedScanHub hub;
  return hub;
}

size_t SharedScanHub::KeyHash::operator()(const SharedScanKey& k) const {
  size_t h = std::hash<const void*>()(k.table);
  h = h * 1315423911u ^ std::hash<const void*>()(k.snapshot);
  h = h * 1315423911u ^ k.morsel_rows;
  h = h * 1315423911u ^ k.batch_rows;
  for (ColumnId c : k.projection) h = h * 1315423911u ^ (c + 1);
  return h;
}

std::unique_ptr<SharedScanConsumer> SharedScanHub::AttachOrCreate(
    const SharedScanKey& key, std::vector<SidRange> morsels,
    const MorselSourceFactory& factory, const ScanOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.attaches;
  auto it = streams_.find(key);
  if (it != streams_.end()) {
    std::shared_ptr<SharedScanStream> live = it->second.lock();
    if (live != nullptr && !live->ExhaustedForNewcomers()) {
      ++stats_.ride_alongs;
      return live->Attach();
    }
    streams_.erase(it);  // dead or fully claimed: start fresh
  }
  size_t workers = opts.num_threads <= 0
                       ? static_cast<size_t>(ThreadPool::DefaultThreads())
                       : static_cast<size_t>(opts.num_threads);
  auto stream = std::make_shared<SharedScanStream>(
      std::move(morsels), factory, opts.batch_rows, workers,
      CurrentQueryToken());
  // Attach the creator before the workers start: every claimed morsel
  // then has at least one subscriber, so nothing is merged into the
  // void.
  std::unique_ptr<SharedScanConsumer> consumer = stream->Attach();
  stream->Start();
  streams_[key] = stream;
  ++stats_.streams_created;
  return consumer;
}

SharedScanHubStats SharedScanHub::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------
// MakeSharedScanSource.
// ---------------------------------------------------------------------

namespace {

class SharedScanBatchSource : public BatchSource {
 public:
  SharedScanBatchSource(std::shared_ptr<SharedScanConsumer> consumer,
                        std::vector<std::unique_ptr<PipelineOp>> ops)
      : consumer_(std::move(consumer)), ops_(std::move(ops)) {}

  StatusOr<bool> Next(Batch* out, size_t max_rows) override {
    if (max_rows == 0) max_rows = kDefaultBatchSize;
    if (!prepared_) {
      for (const auto& op : ops_) {
        PDT_RETURN_NOT_OK(op->Prepare());
      }
      states_.reserve(ops_.size());
      for (const auto& op : ops_) states_.push_back(op->MakeState());
      prepared_ = true;
    }
    while (true) {
      if (pending_off_ < pending_.num_rows()) {
        return EmitSlice(out, max_rows);
      }
      if (!queue_.empty()) {
        pending_ = std::move(queue_.front());
        queue_.pop_front();
        pending_off_ = 0;
        continue;
      }
      SharedMorselUnit unit;
      PDT_ASSIGN_OR_RETURN(bool more, consumer_->NextUnit(&unit));
      if (!more) return false;
      for (const std::shared_ptr<const Batch>& shared : unit.batches) {
        // Private copy: the unit's batches are shared read-only across
        // riders, the fragment ops mutate in place.
        Batch local = *shared;
        Status st = Status::OK();
        for (size_t i = 0; i < ops_.size() && st.ok(); ++i) {
          st = ops_[i]->Execute(&local, states_[i].get());
        }
        PDT_RETURN_NOT_OK(st);
        if (local.num_rows() > 0) queue_.push_back(std::move(local));
      }
    }
  }

 private:
  bool EmitSlice(Batch* out, size_t max_rows) {
    const size_t take =
        std::min(max_rows, pending_.num_rows() - pending_off_);
    out->ResetLike(pending_);
    out->set_start_rid(pending_.start_rid() + pending_off_);
    for (size_t i = 0; i < pending_.num_columns(); ++i) {
      out->column(i).AppendRange(pending_.column(i), pending_off_,
                                 pending_off_ + take);
    }
    pending_off_ += take;
    if (pending_off_ >= pending_.num_rows()) {
      pending_ = Batch();
      pending_off_ = 0;
    }
    return true;
  }

  std::shared_ptr<SharedScanConsumer> consumer_;
  std::vector<std::unique_ptr<PipelineOp>> ops_;
  std::vector<std::unique_ptr<PipelineOpState>> states_;
  bool prepared_ = false;
  std::deque<Batch> queue_;
  Batch pending_;
  size_t pending_off_ = 0;
};

}  // namespace

std::unique_ptr<BatchSource> MakeSharedScanSource(
    std::shared_ptr<SharedScanConsumer> consumer,
    std::vector<std::unique_ptr<PipelineOp>> ops) {
  return std::make_unique<SharedScanBatchSource>(std::move(consumer),
                                                 std::move(ops));
}

}  // namespace pdtstore

// Group-commit ablation: the same concurrent commit workload against the
// durable WAL with per-commit fsyncs (every committer flushes its own
// frames — the classic baseline) and with group commit (committers queue
// their frames and one leader fsyncs the batch). Reports txns/sec and
// fsyncs-per-transaction per thread count:
//
//   bench_wal_group_commit [--txns=N] [--threads=1,4,8] [--json=PATH]
//
// The interesting number is syncs_per_txn: per-commit sync pins it at
// 1.0, while group commit drives it toward 1/batch-size as concurrency
// grows — the whole point of batching the durability wait.
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "txn/txn_manager.h"
#include "util/file.h"
#include "util/stopwatch.h"

namespace pdtstore {
namespace bench {
namespace {

std::shared_ptr<const Schema> BenchSchema() {
  auto s = Schema::Make({{"k", TypeId::kInt64}, {"v", TypeId::kInt64}}, {0});
  return std::make_shared<const Schema>(std::move(*s));
}

struct RunResult {
  double txns_per_sec = 0;
  double syncs_per_txn = 0;
  double wall_ms = 0;
};

// Runs `total_txns` single-insert transactions across `threads` workers
// against a fresh table + WAL segment, fsyncing per the mode.
RunResult RunWorkload(bool group_commit, int threads, int total_txns,
                      const std::string& wal_path) {
  Table table("bench", BenchSchema(), TableOptions{});
  Wal wal;
  TxnManagerOptions opts;
  opts.group_commit = group_commit;
  TxnManager mgr(&table, &wal, opts);
  auto writer = WalWriter::Open(FileSystem::Default(), wal_path,
                                /*truncate=*/true);
  if (!writer.ok()) {
    std::fprintf(stderr, "open %s: %s\n", wal_path.c_str(),
                 writer.status().ToString().c_str());
    std::abort();
  }
  mgr.SetWalWriter(writer->get());

  const int per_thread = total_txns / threads;
  std::atomic<int> failures{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        auto txn = mgr.Begin();
        // Disjoint keys per worker: no conflicts, so every commit pays
        // exactly the durability cost being measured.
        const int64_t key = static_cast<int64_t>(t) * per_thread + i;
        if (!txn->Insert({key, key}).ok() || !txn->Commit().ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = sw.ElapsedSeconds();
  if (failures.load() != 0) {
    std::fprintf(stderr, "workload had %d failed commits\n",
                 failures.load());
    std::abort();
  }
  const int committed = per_thread * threads;
  RunResult r;
  r.wall_ms = secs * 1e3;
  r.txns_per_sec = committed / secs;
  r.syncs_per_txn =
      static_cast<double>((*writer)->sync_count()) / committed;
  return r;
}

int Main(int argc, char** argv) {
  const int total_txns = std::stoi(FlagValue(argc, argv, "txns", "2000"));
  const std::string threads_flag = FlagValue(argc, argv, "threads", "1,4,8");
  const std::string json_path = FlagValue(argc, argv, "json", "");

  std::vector<int> thread_counts;
  for (size_t pos = 0; pos < threads_flag.size();) {
    size_t comma = threads_flag.find(',', pos);
    if (comma == std::string::npos) comma = threads_flag.size();
    thread_counts.push_back(std::stoi(threads_flag.substr(pos, comma - pos)));
    pos = comma + 1;
  }

  const std::string dir =
      (std::filesystem::temp_directory_path() / "pdt_bench_wal").string();
  std::filesystem::create_directories(dir);

  JsonResultWriter json;
  std::printf("%-24s %8s %12s %14s %10s\n", "mode", "threads", "txns/sec",
              "syncs/txn", "wall ms");
  for (int threads : thread_counts) {
    for (bool group : {false, true}) {
      const std::string mode =
          group ? "wal_group_commit" : "wal_sync_per_commit";
      const std::string wal_path = dir + "/" + mode + ".wal";
      // Warm-up run settles file creation + allocator noise, then the
      // measured run.
      (void)RunWorkload(group, threads, total_txns / 4 + threads, wal_path);
      RunResult r = RunWorkload(group, threads, total_txns, wal_path);
      std::printf("%-24s %8d %12.0f %14.3f %10.1f\n", mode.c_str(), threads,
                  r.txns_per_sec, r.syncs_per_txn, r.wall_ms);
      const std::string bench = mode + "_t" + std::to_string(threads);
      json.Metric(bench, "txns_per_sec", r.txns_per_sec);
      json.Metric(bench, "syncs_per_txn", r.syncs_per_txn);
      json.Metric(bench, "wall_ms", r.wall_ms);
    }
  }
  std::filesystem::remove_all(dir);

  if (!json_path.empty()) {
    if (!json.WriteFile(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace pdtstore

int main(int argc, char** argv) {
  return pdtstore::bench::Main(argc, argv);
}

#include "pdt/merge_scan.h"

#include <algorithm>
#include <cassert>

namespace pdtstore {

// ---------------------------------------------------------------------
// StableScanSource.
// ---------------------------------------------------------------------

StableScanSource::StableScanSource(const ColumnStore* store,
                                   std::vector<ColumnId> projection,
                                   std::vector<SidRange> ranges)
    : store_(store),
      projection_(std::move(projection)),
      ranges_(std::move(ranges)) {
  assert(!projection_.empty() && "scan needs at least one column");
  if (ranges_.empty()) {
    ranges_.push_back(SidRange{0, store_->num_rows()});
  }
}

StatusOr<bool> StableScanSource::Next(Batch* out, size_t max_rows) {
  if (!started_) {
    started_ = true;
    cur_sid_ = ranges_.empty() ? 0 : ranges_[0].begin;
  }
  // Skip exhausted / empty ranges.
  while (range_idx_ < ranges_.size() &&
         cur_sid_ >= ranges_[range_idx_].end) {
    ++range_idx_;
    if (range_idx_ < ranges_.size()) cur_sid_ = ranges_[range_idx_].begin;
  }
  if (range_idx_ >= ranges_.size() || store_->num_rows() == 0) return false;

  const SidRange& range = ranges_[range_idx_];
  size_t ci = store_->ChunkIndexForSid(cur_sid_);
  auto [cstart, cend] = store_->ChunkSidRange(ci);
  Sid end = std::min({range.end, cend, cur_sid_ + max_rows});

  *out = Batch::ForSchema(store_->schema(), projection_);
  out->set_start_rid(cur_sid_);
  for (size_t i = 0; i < projection_.size(); ++i) {
    PDT_ASSIGN_OR_RETURN(auto data, store_->FetchChunk(projection_[i], ci));
    out->column(i).AppendRange(*data, cur_sid_ - cstart, end - cstart);
  }
  cur_sid_ = end;
  return true;
}

// ---------------------------------------------------------------------
// PdtMergeSource.
// ---------------------------------------------------------------------

PdtMergeSource::PdtMergeSource(std::unique_ptr<BatchSource> input,
                               const Pdt* pdt,
                               std::vector<ColumnId> projection)
    : input_(std::move(input)),
      pdt_(pdt),
      projection_(std::move(projection)) {
  cursor_ = pdt_->Begin();
}

StatusOr<bool> PdtMergeSource::FillInput(size_t max_rows) {
  PDT_ASSIGN_OR_RETURN(bool more, input_->Next(&buf_, max_rows));
  buf_off_ = 0;
  if (!more) {
    buf_ = Batch();  // drop any stale rows from the previous batch
    input_done_ = true;
    return false;
  }
  if (buf_.start_rid() != in_pos_) {
    // Discontinuity (restricted scan skipped a SID range): re-seek. The
    // cursor's delta_before is the global prefix delta at the new
    // position, so emitted RIDs remain globally correct.
    in_pos_ = buf_.start_rid();
    cursor_ = pdt_->SeekSid(in_pos_);
  }
  return true;
}

void PdtMergeSource::EmitInsert(Batch* out, uint64_t offset) {
  const ValueSpace& vs = pdt_->value_space();
  for (size_t i = 0; i < projection_.size(); ++i) {
    out->column(i).AppendFrom(vs.insert_column(projection_[i]), offset);
  }
}

StatusOr<bool> PdtMergeSource::Next(Batch* out, size_t max_rows) {
  *out = Batch::ForSchema(pdt_->schema(), projection_);
  bool start_set = false;
  auto set_start = [&] {
    if (!start_set) {
      out->set_start_rid(in_pos_ + cursor_.delta_before());
      start_set = true;
    }
  };

  while (out->num_rows() < max_rows) {
    if (!input_done_ && buf_off_ >= buf_.num_rows()) {
      PDT_ASSIGN_OR_RETURN(bool more, FillInput(max_rows));
      (void)more;
    }
    const bool have_row = buf_off_ < buf_.num_rows();
    const bool have_entry = cursor_.Valid();

    if (have_row) {
      if (!have_entry || cursor_.sid() > in_pos_) {
        // Fast path: pass a whole run through untouched. `skip` in the
        // paper's Algorithm 2 — here a bulk column copy.
        size_t run = buf_.num_rows() - buf_off_;
        if (have_entry) {
          run = std::min<size_t>(run, cursor_.sid() - in_pos_);
        }
        run = std::min(run, max_rows - out->num_rows());
        set_start();
        for (size_t i = 0; i < out->num_columns(); ++i) {
          out->column(i).AppendRange(buf_.column(i), buf_off_,
                                     buf_off_ + run);
        }
        buf_off_ += run;
        in_pos_ += run;
        continue;
      }
      assert(cursor_.sid() == in_pos_);
      const uint16_t type = cursor_.type();
      if (type == kTypeIns) {
        set_start();
        EmitInsert(out, cursor_.value());
        cursor_.Next();
        continue;
      }
      if (type == kTypeDel) {
        // Ghost: consume the stable row without emitting it.
        ++buf_off_;
        ++in_pos_;
        cursor_.Next();
        continue;
      }
      // Modify group: emit the stable row, patching projected columns.
      set_start();
      out->AppendRow(buf_, buf_off_);
      const size_t row = out->num_rows() - 1;
      const Sid s = cursor_.sid();
      while (cursor_.Valid() && cursor_.sid() == s &&
             IsModifyType(cursor_.type())) {
        const ColumnId col = static_cast<ColumnId>(cursor_.type());
        int idx = out->IndexOfColumn(col);
        if (idx >= 0) {
          out->column(idx).SetValue(
              row, pdt_->value_space().GetModifyValue(col, cursor_.value()));
        }
        cursor_.Next();
      }
      ++buf_off_;
      ++in_pos_;
      continue;
    }

    if (!input_done_) continue;  // fetch more at the loop top

    // Input exhausted: emit trailing inserts at the end position.
    if (have_entry && cursor_.sid() == in_pos_ &&
        cursor_.type() == kTypeIns) {
      set_start();
      EmitInsert(out, cursor_.value());
      cursor_.Next();
      continue;
    }
    break;
  }
  return out->num_rows() > 0;
}

// ---------------------------------------------------------------------
// Stack assembly.
// ---------------------------------------------------------------------

std::unique_ptr<BatchSource> MakeMergeScan(const ColumnStore& store,
                                           std::vector<const Pdt*> layers,
                                           std::vector<ColumnId> projection,
                                           std::vector<SidRange> ranges) {
  std::unique_ptr<BatchSource> source = std::make_unique<StableScanSource>(
      &store, projection, std::move(ranges));
  for (const Pdt* layer : layers) {
    if (layer == nullptr) continue;
    source = std::make_unique<PdtMergeSource>(std::move(source), layer,
                                              projection);
  }
  return source;
}

}  // namespace pdtstore

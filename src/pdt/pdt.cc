#include "pdt/pdt.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace pdtstore {

// ---------------------------------------------------------------------
// Node layout. The paper packs a leaf into 128 bytes at fan-out 8; we use
// fixed capacity kMaxFanout arrays so the fan-out can be swept at runtime
// by the ablation benchmark, at the cost of some slack memory.
// ---------------------------------------------------------------------

struct Pdt::NodeHeader {
  bool is_leaf = true;
  int16_t count = 0;
  InternNode* parent = nullptr;
  int16_t pos_in_parent = 0;
};

struct Pdt::LeafNode : Pdt::NodeHeader {
  Sid sids[kMaxFanout];
  uint16_t types[kMaxFanout];
  uint64_t values[kMaxFanout];
  LeafNode* next = nullptr;
  LeafNode* prev = nullptr;
};

struct Pdt::InternNode : Pdt::NodeHeader {
  Sid min_sids[kMaxFanout];     // min SID of child i's subtree
  int64_t deltas[kMaxFanout];   // #ins - #del within child i's subtree
  NodeHeader* children[kMaxFanout];
};

// ---------------------------------------------------------------------
// Cursor.
// ---------------------------------------------------------------------

bool Pdt::Cursor::Valid() const { return leaf_ != nullptr && pos_ < leaf_->count; }

Sid Pdt::Cursor::sid() const { return leaf_->sids[pos_]; }
uint16_t Pdt::Cursor::type() const { return leaf_->types[pos_]; }
uint64_t Pdt::Cursor::value() const { return leaf_->values[pos_]; }

void Pdt::Cursor::Next() {
  assert(Valid());
  delta_before_ += DeltaOf(leaf_->types[pos_]);
  ++pos_;
  while (pos_ >= leaf_->count && leaf_->next != nullptr) {
    leaf_ = leaf_->next;
    pos_ = 0;
  }
}

bool Pdt::PrevCursor(Cursor* c) {
  LeafNode* leaf = c->leaf_;
  int pos = c->pos_;
  while (pos == 0) {
    if (leaf->prev == nullptr) return false;
    leaf = leaf->prev;
    pos = leaf->count;
  }
  --pos;
  c->leaf_ = leaf;
  c->pos_ = pos;
  c->delta_before_ -= DeltaOf(leaf->types[pos]);
  return true;
}

// ---------------------------------------------------------------------
// Construction / destruction.
// ---------------------------------------------------------------------

Pdt::Pdt(std::shared_ptr<const Schema> schema, PdtOptions options)
    : value_space_(std::move(schema)), options_(options) {
  options_.fanout = std::clamp(options_.fanout, 4, kMaxFanout);
  auto* leaf = new LeafNode();
  leaf->is_leaf = true;
  root_ = leaf;
  first_leaf_ = last_leaf_ = leaf;
  node_count_ = 1;
}

Pdt::~Pdt() { FreeSubtree(root_); }

void Pdt::FreeSubtree(NodeHeader* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* in = static_cast<InternNode*>(node);
    for (int i = 0; i < in->count; ++i) FreeSubtree(in->children[i]);
    delete in;
  } else {
    delete static_cast<LeafNode*>(node);
  }
}

void Pdt::ClearTree() {
  FreeSubtree(root_);
  auto* leaf = new LeafNode();
  root_ = leaf;
  first_leaf_ = last_leaf_ = leaf;
  node_count_ = 1;
  entry_count_ = insert_count_ = delete_count_ = 0;
}

void Pdt::Clear() {
  ClearTree();
  value_space_.Clear();
}

std::unique_ptr<Pdt> Pdt::Clone() const {
  auto copy = std::make_unique<Pdt>(value_space_.shared_schema(), options_);
  copy->value_space_ = value_space_;
  Status st = copy->BuildFromSorted(Flatten());
  assert(st.ok());
  (void)st;
  return copy;
}

void Pdt::BumpCounters(uint16_t type, int dir) {
  entry_count_ += dir;
  if (type == kTypeIns) insert_count_ += dir;
  if (type == kTypeDel) delete_count_ += dir;
}

// ---------------------------------------------------------------------
// Navigation.
// ---------------------------------------------------------------------

Pdt::Cursor Pdt::DescendRightmostByRid(Rid rid) const {
  Cursor c;
  const NodeHeader* n = root_;
  int64_t delta = 0;
  const int64_t target = static_cast<int64_t>(rid);
  while (!n->is_leaf) {
    const auto* in = static_cast<const InternNode*>(n);
    int chosen = 0;
    int64_t chosen_delta = delta;
    int64_t running = delta;
    for (int i = 1; i < in->count; ++i) {
      running += in->deltas[i - 1];
      // first-entry RID of child i
      if (static_cast<int64_t>(in->min_sids[i]) + running <= target) {
        chosen = i;
        chosen_delta = running;
      }
    }
    delta = chosen_delta;
    n = in->children[chosen];
  }
  c.leaf_ = const_cast<LeafNode*>(static_cast<const LeafNode*>(n));
  c.pos_ = 0;
  c.delta_before_ = delta;
  return c;
}

Pdt::Cursor Pdt::DescendRightmostBySidRid(Sid sid, Rid rid) const {
  Cursor c;
  const NodeHeader* n = root_;
  int64_t delta = 0;
  const int64_t target_rid = static_cast<int64_t>(rid);
  while (!n->is_leaf) {
    const auto* in = static_cast<const InternNode*>(n);
    int chosen = 0;
    int64_t chosen_delta = delta;
    int64_t running = delta;
    for (int i = 1; i < in->count; ++i) {
      running += in->deltas[i - 1];
      int64_t child_rid = static_cast<int64_t>(in->min_sids[i]) + running;
      // lexicographic (min_sid, min_rid) <= (sid, rid)
      if (in->min_sids[i] < sid ||
          (in->min_sids[i] == sid && child_rid <= target_rid)) {
        chosen = i;
        chosen_delta = running;
      }
    }
    delta = chosen_delta;
    n = in->children[chosen];
  }
  c.leaf_ = const_cast<LeafNode*>(static_cast<const LeafNode*>(n));
  c.pos_ = 0;
  c.delta_before_ = delta;
  return c;
}

Pdt::Cursor Pdt::DescendLeftmostBySid(Sid sid) const {
  Cursor c;
  const NodeHeader* n = root_;
  int64_t delta = 0;
  while (!n->is_leaf) {
    const auto* in = static_cast<const InternNode*>(n);
    int chosen = in->count - 1;
    for (int i = 0; i + 1 < in->count; ++i) {
      if (in->min_sids[i + 1] >= sid) {
        chosen = i;
        break;
      }
      delta += in->deltas[i];
    }
    n = in->children[chosen];
  }
  c.leaf_ = const_cast<LeafNode*>(static_cast<const LeafNode*>(n));
  c.pos_ = 0;
  c.delta_before_ = delta;
  return c;
}

Pdt::Cursor Pdt::Begin() const {
  Cursor c;
  c.leaf_ = first_leaf_;
  c.pos_ = 0;
  c.delta_before_ = 0;
  return c;
}

Pdt::Cursor Pdt::SeekSid(Sid sid) const {
  Cursor c = DescendLeftmostBySid(sid);
  while (c.Valid() && c.sid() < sid) c.Next();
  return c;
}

// ---------------------------------------------------------------------
// Structural editing.
// ---------------------------------------------------------------------

int64_t Pdt::SubtreeDelta(const NodeHeader* node) const {
  if (node->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(node);
    int64_t d = 0;
    for (int i = 0; i < leaf->count; ++i) d += DeltaOf(leaf->types[i]);
    return d;
  }
  const auto* in = static_cast<const InternNode*>(node);
  int64_t d = 0;
  for (int i = 0; i < in->count; ++i) d += in->deltas[i];
  return d;
}

Sid Pdt::SubtreeMinSid(const NodeHeader* node) const {
  if (node->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(node);
    return leaf->count > 0 ? leaf->sids[0] : 0;
  }
  return static_cast<const InternNode*>(node)->min_sids[0];
}

void Pdt::AddNodeDeltas(LeafNode* leaf, int64_t val) {
  NodeHeader* node = leaf;
  while (node->parent != nullptr) {
    node->parent->deltas[node->pos_in_parent] += val;
    node = node->parent;
  }
}

void Pdt::UpdateMinSidUpward(NodeHeader* node) {
  while (node->parent != nullptr) {
    node->parent->min_sids[node->pos_in_parent] = SubtreeMinSid(node);
    if (node->pos_in_parent != 0) break;
    node = node->parent;
  }
}

void Pdt::LinkSibling(NodeHeader* left, NodeHeader* right, Sid right_min,
                      int64_t right_delta) {
  InternNode* parent = left->parent;
  if (parent == nullptr) {
    // `left` was the root: grow the tree by one level.
    auto* nr = new InternNode();
    ++node_count_;
    nr->is_leaf = false;
    nr->count = 2;
    nr->children[0] = left;
    nr->children[1] = right;
    nr->min_sids[0] = SubtreeMinSid(left);
    nr->min_sids[1] = right_min;
    nr->deltas[0] = SubtreeDelta(left);
    nr->deltas[1] = right_delta;
    left->parent = nr;
    left->pos_in_parent = 0;
    right->parent = nr;
    right->pos_in_parent = 1;
    root_ = nr;
    return;
  }
  if (parent->count == options_.fanout) {
    SplitIntern(parent);
    parent = left->parent;  // the split may have moved `left`
  }
  int lpos = left->pos_in_parent;
  parent->deltas[lpos] -= right_delta;
  for (int i = parent->count; i > lpos + 1; --i) {
    parent->children[i] = parent->children[i - 1];
    parent->min_sids[i] = parent->min_sids[i - 1];
    parent->deltas[i] = parent->deltas[i - 1];
    parent->children[i]->pos_in_parent = static_cast<int16_t>(i);
  }
  parent->children[lpos + 1] = right;
  parent->min_sids[lpos + 1] = right_min;
  parent->deltas[lpos + 1] = right_delta;
  right->parent = parent;
  right->pos_in_parent = static_cast<int16_t>(lpos + 1);
  ++parent->count;
}

Pdt::LeafNode* Pdt::SplitLeaf(LeafNode* leaf) {
  auto* right = new LeafNode();
  ++node_count_;
  int half = leaf->count / 2;
  int moved = leaf->count - half;
  int64_t moved_delta = 0;
  for (int i = 0; i < moved; ++i) {
    right->sids[i] = leaf->sids[half + i];
    right->types[i] = leaf->types[half + i];
    right->values[i] = leaf->values[half + i];
    moved_delta += DeltaOf(right->types[i]);
  }
  right->count = static_cast<int16_t>(moved);
  leaf->count = static_cast<int16_t>(half);
  right->next = leaf->next;
  right->prev = leaf;
  if (leaf->next != nullptr) {
    leaf->next->prev = right;
  } else {
    last_leaf_ = right;
  }
  leaf->next = right;
  LinkSibling(leaf, right, right->sids[0], moved_delta);
  return right;
}

Pdt::InternNode* Pdt::SplitIntern(InternNode* node) {
  auto* right = new InternNode();
  ++node_count_;
  right->is_leaf = false;
  int half = node->count / 2;
  int moved = node->count - half;
  int64_t moved_delta = 0;
  for (int i = 0; i < moved; ++i) {
    right->children[i] = node->children[half + i];
    right->min_sids[i] = node->min_sids[half + i];
    right->deltas[i] = node->deltas[half + i];
    right->children[i]->parent = right;
    right->children[i]->pos_in_parent = static_cast<int16_t>(i);
    moved_delta += right->deltas[i];
  }
  right->count = static_cast<int16_t>(moved);
  node->count = static_cast<int16_t>(half);
  LinkSibling(node, right, right->min_sids[0], moved_delta);
  return right;
}

void Pdt::InsertEntryAt(Cursor* c, Sid sid, uint16_t type, uint64_t value) {
  LeafNode* leaf = c->leaf_;
  int pos = c->pos_;
  if (leaf->count == options_.fanout) {
    LeafNode* right = SplitLeaf(leaf);
    if (pos > leaf->count) {
      pos -= leaf->count;
      leaf = right;
    }
  }
  for (int i = leaf->count; i > pos; --i) {
    leaf->sids[i] = leaf->sids[i - 1];
    leaf->types[i] = leaf->types[i - 1];
    leaf->values[i] = leaf->values[i - 1];
  }
  leaf->sids[pos] = sid;
  leaf->types[pos] = type;
  leaf->values[pos] = value;
  ++leaf->count;
  AddNodeDeltas(leaf, DeltaOf(type));
  if (pos == 0) UpdateMinSidUpward(leaf);
  BumpCounters(type, +1);
  c->leaf_ = leaf;
  c->pos_ = pos;
}

void Pdt::RemoveFromParent(NodeHeader* node) {
  InternNode* parent = node->parent;
  assert(parent != nullptr);
  int pos = node->pos_in_parent;
  for (int i = pos; i + 1 < parent->count; ++i) {
    parent->children[i] = parent->children[i + 1];
    parent->min_sids[i] = parent->min_sids[i + 1];
    parent->deltas[i] = parent->deltas[i + 1];
    parent->children[i]->pos_in_parent = static_cast<int16_t>(i);
  }
  --parent->count;
  if (parent->count == 0) {
    // Only possible transiently; remove the now-empty parent as well.
    if (parent == root_) {
      // Tree became empty of internal structure; should not happen since
      // leaves collapse into the root first, but handle defensively.
      return;
    }
    RemoveFromParent(parent);
    delete parent;
    --node_count_;
    return;
  }
  UpdateMinSidUpward(parent->children[0]);
  if (parent == root_ && parent->count == 1) {
    root_ = parent->children[0];
    root_->parent = nullptr;
    root_->pos_in_parent = 0;
    delete parent;
    --node_count_;
  }
}

void Pdt::RemoveEntryAt(Cursor* c) {
  LeafNode* leaf = c->leaf_;
  int pos = c->pos_;
  assert(pos < leaf->count);
  uint16_t type = leaf->types[pos];
  AddNodeDeltas(leaf, -DeltaOf(type));
  BumpCounters(type, -1);
  for (int i = pos; i + 1 < leaf->count; ++i) {
    leaf->sids[i] = leaf->sids[i + 1];
    leaf->types[i] = leaf->types[i + 1];
    leaf->values[i] = leaf->values[i + 1];
  }
  --leaf->count;
  if (leaf->count == 0 && leaf != root_) {
    LeafNode* nxt = leaf->next;
    if (leaf->prev != nullptr) leaf->prev->next = leaf->next;
    if (leaf->next != nullptr) leaf->next->prev = leaf->prev;
    if (first_leaf_ == leaf) first_leaf_ = leaf->next;
    if (last_leaf_ == leaf) last_leaf_ = leaf->prev;
    RemoveFromParent(leaf);
    delete leaf;
    --node_count_;
    if (nxt != nullptr) {
      c->leaf_ = nxt;
      c->pos_ = 0;
    } else {
      c->leaf_ = last_leaf_;
      c->pos_ = last_leaf_->count;  // parked at end
    }
    return;
  }
  if (pos == 0 && leaf->count > 0) UpdateMinSidUpward(leaf);
  if (pos >= leaf->count && leaf->next != nullptr) {
    c->leaf_ = leaf->next;
    c->pos_ = 0;
  } else {
    c->pos_ = pos;  // either a valid entry or parked at end
  }
}

// ---------------------------------------------------------------------
// Update operations (Algorithms 3-6).
// ---------------------------------------------------------------------

Status Pdt::AddInsert(Sid sid, Rid rid, const Tuple& tuple) {
  PDT_RETURN_NOT_OK(schema().ValidateTuple(tuple));
  Cursor c = DescendRightmostBySidRid(sid, rid);
  // Alg. 3 line 2: skip entries preceding the new insert.
  while (c.Valid() && (c.sid() < sid || c.rid() < rid)) c.Next();
  // The rightmost descent may overshoot into the middle of a run of
  // entries tied at (sid, rid) — e.g. a modify group spanning a leaf
  // boundary. Back up to the first entry of the tied run so the insert
  // does not split it.
  while (true) {
    Cursor p = c;
    if (!PrevCursor(&p)) break;
    if (p.sid() >= sid && p.rid() >= rid) {
      c = p;
    } else {
      break;
    }
  }
  int64_t new_sid = static_cast<int64_t>(rid) - c.delta_before();
  if (new_sid < 0) {
    return Status::InvalidArgument(StringPrintf(
        "insert rid %llu inconsistent with PDT deltas",
        static_cast<unsigned long long>(rid)));
  }
  uint64_t offset = value_space_.AddInsertTuple(tuple);
  InsertEntryAt(&c, static_cast<Sid>(new_sid), kTypeIns, offset);
  return Status::OK();
}

Status Pdt::AddModify(Rid rid, ColumnId col, const Value& v) {
  if (col >= schema().num_columns()) {
    return Status::InvalidArgument("modify: column out of range");
  }
  if (v.type() != schema().column(col).type) {
    return Status::InvalidArgument("modify: value type mismatch");
  }
  Cursor c = DescendRightmostByRid(rid);
  while (c.Valid() && c.rid() < rid) c.Next();
  // Alg. 4 line 3: ghosts sharing this RID cannot be modify targets.
  while (c.Valid() && c.rid() == rid && c.type() == kTypeDel) c.Next();
  if (c.Valid() && c.rid() == rid && c.type() == kTypeIns) {
    // The tuple at `rid` is a PDT insert: patch the insert space.
    value_space_.SetInsertColumn(c.value(), col, v);
    return Status::OK();
  }
  if (c.Valid() && c.rid() == rid && IsModifyType(c.type())) {
    Sid s = c.sid();
    // The modify group of this tuple may extend into preceding leaves.
    Cursor b = c;
    while (PrevCursor(&b) && IsModifyType(b.type()) && b.sid() == s) {
      if (b.type() == col) {
        value_space_.SetModifyValue(col, b.value(), v);
        return Status::OK();
      }
    }
    // Forward through the group; modify in place on a column match.
    while (c.Valid() && c.sid() == s && IsModifyType(c.type())) {
      if (c.type() == col) {
        value_space_.SetModifyValue(col, c.value(), v);
        return Status::OK();
      }
      c.Next();
    }
    // New column for this tuple: append a modify entry to the group.
    uint64_t offset = value_space_.AddModifyValue(col, v);
    InsertEntryAt(&c, s, static_cast<uint16_t>(col), offset);
    return Status::OK();
  }
  // Untouched stable tuple: fresh modify entry.
  uint64_t offset = value_space_.AddModifyValue(col, v);
  Sid s = static_cast<Sid>(static_cast<int64_t>(rid) - c.delta_before());
  InsertEntryAt(&c, s, static_cast<uint16_t>(col), offset);
  return Status::OK();
}

Status Pdt::AddDelete(Rid rid, const std::vector<Value>& sk_values) {
  Cursor c = DescendRightmostByRid(rid);
  while (c.Valid() && c.rid() < rid) c.Next();
  // Alg. 5 line 3: skip ghosts sharing this RID.
  while (c.Valid() && c.rid() == rid && c.type() == kTypeDel) c.Next();
  if (c.Valid() && c.rid() == rid && c.type() == kTypeIns) {
    // Deleting a tuple this PDT inserted: erase all trace of it. (The
    // insert-space row becomes a reclaimed-at-propagate hole.)
    RemoveEntryAt(&c);
    return Status::OK();
  }
  if (c.Valid() && c.rid() == rid && IsModifyType(c.type())) {
    // Deleting a stable tuple that has modify entries: remove them all
    // and replace with a single DEL.
    Sid s = c.sid();
    Cursor b = c;
    while (PrevCursor(&b) && IsModifyType(b.type()) && b.sid() == s) {
      c = b;
    }
    while (c.Valid() && c.sid() == s && IsModifyType(c.type())) {
      RemoveEntryAt(&c);
    }
    uint64_t offset = value_space_.AddDeleteKey(sk_values);
    InsertEntryAt(&c, s, kTypeDel, offset);
    return Status::OK();
  }
  if (sk_values.size() != schema().sort_key().size()) {
    return Status::InvalidArgument("delete: sort key arity mismatch");
  }
  uint64_t offset = value_space_.AddDeleteKey(sk_values);
  Sid s = static_cast<Sid>(static_cast<int64_t>(rid) - c.delta_before());
  InsertEntryAt(&c, s, kTypeDel, offset);
  return Status::OK();
}

Sid Pdt::SKRidToSid(const std::vector<Value>& sk, Rid rid) const {
  Cursor c = DescendRightmostByRid(rid);
  while (c.Valid() && c.rid() < rid) c.Next();
  // The rightmost descent may land mid-way into the ghost chain at `rid`
  // when it spans a leaf boundary; rewind to the chain start so every
  // ghost's key is compared.
  while (true) {
    Cursor p = c;
    if (!PrevCursor(&p)) break;
    if (p.rid() >= rid) {
      c = p;
    } else {
      break;
    }
  }
  // Alg. 6 line 3: advance past ghosts whose key precedes `sk`, so the
  // insert lands in SK order relative to deleted stable tuples.
  while (c.Valid() && c.rid() == rid && c.type() == kTypeDel &&
         value_space_.CompareDeleteKeyToKey(c.value(), sk) < 0) {
    c.Next();
  }
  return static_cast<Sid>(static_cast<int64_t>(rid) - c.delta_before());
}

Pdt::RidLookup Pdt::LookupRid(Rid rid) const {
  RidLookup out;
  Cursor c = DescendRightmostByRid(rid);
  while (c.Valid() && c.rid() < rid) c.Next();
  while (c.Valid() && c.rid() == rid && c.type() == kTypeDel) c.Next();
  if (c.Valid() && c.rid() == rid && c.type() == kTypeIns) {
    out.is_insert = true;
    out.insert_offset = c.value();
    return out;
  }
  if (c.Valid() && c.rid() == rid && IsModifyType(c.type())) {
    Sid s = c.sid();
    out.sid = s;
    Cursor b = c;
    while (PrevCursor(&b) && IsModifyType(b.type()) && b.sid() == s) {
      out.mods.emplace_back(static_cast<ColumnId>(b.type()), b.value());
    }
    while (c.Valid() && c.sid() == s && IsModifyType(c.type())) {
      out.mods.emplace_back(static_cast<ColumnId>(c.type()), c.value());
      c.Next();
    }
    return out;
  }
  out.sid = static_cast<Sid>(static_cast<int64_t>(rid) - c.delta_before());
  return out;
}

Pdt::SidLookup Pdt::SidToRid(Sid sid) const {
  SidLookup out;
  Cursor c = SeekSid(sid);
  // delta_before covers all entries with entry.sid < sid; inserts at this
  // SID also precede the stable tuple, modifies/the tuple's own delete do
  // not shift it.
  int64_t delta = c.delta_before();
  while (c.Valid() && c.sid() == sid) {
    if (c.type() == kTypeIns) {
      delta += 1;
    } else if (c.type() == kTypeDel) {
      out.deleted = true;
    }
    c.Next();
  }
  out.rid = static_cast<Rid>(static_cast<int64_t>(sid) + delta);
  return out;
}

// ---------------------------------------------------------------------
// Flatten / bulk build.
// ---------------------------------------------------------------------

std::vector<UpdateEntry> Pdt::Flatten() const {
  std::vector<UpdateEntry> out;
  out.reserve(entry_count_);
  for (Cursor c = Begin(); c.Valid(); c.Next()) out.push_back(c.entry());
  return out;
}

Status Pdt::BuildFromSorted(const std::vector<UpdateEntry>& entries) {
  ClearTree();
  if (entries.empty()) return Status::OK();
  const int fanout = options_.fanout;
  // Leaf level.
  std::vector<NodeHeader*> level;
  delete static_cast<LeafNode*>(root_);  // discard the fresh empty root
  node_count_ = 0;
  first_leaf_ = last_leaf_ = nullptr;
  LeafNode* prev = nullptr;
  for (size_t i = 0; i < entries.size(); i += fanout) {
    auto* leaf = new LeafNode();
    ++node_count_;
    int n = static_cast<int>(std::min<size_t>(fanout, entries.size() - i));
    for (int k = 0; k < n; ++k) {
      const UpdateEntry& e = entries[i + k];
      leaf->sids[k] = e.sid;
      leaf->types[k] = e.type;
      leaf->values[k] = e.value;
      BumpCounters(e.type, +1);
    }
    leaf->count = static_cast<int16_t>(n);
    leaf->prev = prev;
    if (prev != nullptr) {
      prev->next = leaf;
    } else {
      first_leaf_ = leaf;
    }
    prev = leaf;
    level.push_back(leaf);
  }
  last_leaf_ = prev;
  // Internal levels.
  while (level.size() > 1) {
    std::vector<NodeHeader*> next;
    for (size_t i = 0; i < level.size(); i += fanout) {
      auto* in = new InternNode();
      ++node_count_;
      in->is_leaf = false;
      int n = static_cast<int>(std::min<size_t>(fanout, level.size() - i));
      for (int k = 0; k < n; ++k) {
        NodeHeader* child = level[i + k];
        in->children[k] = child;
        in->min_sids[k] = SubtreeMinSid(child);
        in->deltas[k] = SubtreeDelta(child);
        child->parent = in;
        child->pos_in_parent = static_cast<int16_t>(k);
      }
      in->count = static_cast<int16_t>(n);
      next.push_back(in);
    }
    level = std::move(next);
  }
  root_ = level[0];
  root_->parent = nullptr;
  root_->pos_in_parent = 0;
  return Status::OK();
}

size_t Pdt::MemoryBytes() const {
  // Upper-bound estimate: every node charged at the larger node size.
  constexpr size_t kNodeBytes =
      sizeof(InternNode) > sizeof(LeafNode) ? sizeof(InternNode)
                                            : sizeof(LeafNode);
  return node_count_ * kNodeBytes + value_space_.MemoryBytes();
}

// ---------------------------------------------------------------------
// Invariant checking / debugging.
// ---------------------------------------------------------------------

int Pdt::LeafDepth() const {
  int d = 0;
  const NodeHeader* n = root_;
  while (!n->is_leaf) {
    n = static_cast<const InternNode*>(n)->children[0];
    ++d;
  }
  return d;
}

Status Pdt::CheckSubtree(const NodeHeader* node, size_t* entries_seen,
                         int depth, int leaf_depth,
                         int64_t* deep_delta) const {
  if (node->is_leaf) {
    const auto* leaf = static_cast<const LeafNode*>(node);
    if (depth != leaf_depth) return Status::Corruption("ragged leaf depth");
    if (leaf != root_ && leaf->count == 0) {
      return Status::Corruption("empty non-root leaf");
    }
    if (leaf->count > options_.fanout) {
      return Status::Corruption("overfull leaf");
    }
    for (int i = 1; i < leaf->count; ++i) {
      if (leaf->sids[i] < leaf->sids[i - 1]) {
        return Status::Corruption("leaf SIDs not non-decreasing");
      }
    }
    *entries_seen += leaf->count;
    *deep_delta = SubtreeDelta(leaf);
    return Status::OK();
  }
  const auto* in = static_cast<const InternNode*>(node);
  if (in->count < 1 || in->count > options_.fanout) {
    return Status::Corruption("bad internal node count");
  }
  int64_t total = 0;
  for (int i = 0; i < in->count; ++i) {
    const NodeHeader* child = in->children[i];
    if (child->parent != in || child->pos_in_parent != i) {
      return Status::Corruption("bad parent linkage");
    }
    if (in->min_sids[i] != SubtreeMinSid(child)) {
      return Status::Corruption("separator min-SID mismatch");
    }
    if (i > 0 && in->min_sids[i] < in->min_sids[i - 1]) {
      return Status::Corruption("separators not non-decreasing");
    }
    int64_t deep = 0;
    PDT_RETURN_NOT_OK(
        CheckSubtree(child, entries_seen, depth + 1, leaf_depth, &deep));
    // The cached per-child delta must equal the true subtree sum: this is
    // the invariant that makes RID<->SID mapping correct (Sec. 2.1).
    if (in->deltas[i] != deep) {
      return Status::Corruption(StringPrintf(
          "delta mismatch: cached %lld true %lld",
          static_cast<long long>(in->deltas[i]),
          static_cast<long long>(deep)));
    }
    total += deep;
  }
  *deep_delta = total;
  return Status::OK();
}

Status Pdt::CheckInvariants() const {
  size_t seen = 0;
  int64_t deep = 0;
  PDT_RETURN_NOT_OK(CheckSubtree(root_, &seen, 0, LeafDepth(), &deep));
  if (seen != entry_count_) {
    return Status::Corruption("entry count mismatch");
  }
  // Flat-order checks: (SID,RID) ordering and chain shapes.
  int64_t delta = 0;
  bool have_prev = false;
  Sid prev_sid = 0;
  Rid prev_rid = 0;
  uint16_t prev_type = 0;
  size_t ins = 0, del = 0;
  for (Cursor c = Begin(); c.Valid(); c.Next()) {
    if (c.delta_before() != delta) {
      return Status::Corruption("cursor delta drift");
    }
    Sid sid = c.sid();
    Rid rid = c.rid();
    uint16_t type = c.type();
    if (have_prev) {
      if (sid < prev_sid) return Status::Corruption("SID order violated");
      if (rid < prev_rid) return Status::Corruption("RID order violated");
      if (sid == prev_sid && prev_type != kTypeIns) {
        // Cor. 3 (generalized to per-column modify entries): within an
        // equal-SID chain every non-final entry is an INS, except inside
        // a modify group (same tuple, different columns).
        if (!(IsModifyType(prev_type) && IsModifyType(type))) {
          return Status::Corruption("equal-SID chain shape violated");
        }
      }
      if (rid == prev_rid && prev_type != kTypeDel) {
        // Cor. 4, same generalization.
        if (!(IsModifyType(prev_type) && IsModifyType(type))) {
          return Status::Corruption("equal-RID chain shape violated");
        }
      }
      if (sid == prev_sid && rid == prev_rid) {
        // Theorem 1: only modify-group members may share (SID, RID), and
        // then only for distinct columns.
        if (!(IsModifyType(prev_type) && IsModifyType(type) &&
              prev_type != type)) {
          return Status::Corruption("(SID,RID) uniqueness violated");
        }
      }
    }
    // Value-space offset bounds.
    if (type == kTypeIns) {
      ++ins;
      if (c.value() >= value_space_.insert_count()) {
        return Status::Corruption("insert offset out of range");
      }
    } else if (type == kTypeDel) {
      ++del;
      if (c.value() >= value_space_.delete_count()) {
        return Status::Corruption("delete offset out of range");
      }
    }
    delta += DeltaOf(type);
    prev_sid = sid;
    prev_rid = rid;
    prev_type = type;
    have_prev = true;
  }
  if (ins != insert_count_ || del != delete_count_) {
    return Status::Corruption("type counters out of sync");
  }
  if (delta != TotalDelta()) {
    return Status::Corruption("total delta out of sync");
  }
  return Status::OK();
}

std::string Pdt::DebugString() const {
  std::string out = StringPrintf("PDT(entries=%zu ins=%zu del=%zu mod=%zu)",
                                 entry_count_, insert_count_, delete_count_,
                                 ModifyCount());
  out += " [";
  bool first = true;
  for (Cursor c = Begin(); c.Valid(); c.Next()) {
    if (!first) out += " ";
    first = false;
    out += UpdateEntryToString(c.entry());
    out += StringPrintf("/r%llu", static_cast<unsigned long long>(c.rid()));
  }
  out += "]";
  return out;
}

}  // namespace pdtstore
